package rewards

import (
	"errors"
	"fmt"
)

// Source models the Foundation's funding plan end to end: each round,
// R_i Algos from the Table III schedule are dripped into the Foundation
// pool (until the 1.75B ceiling), and B_i ≤ R_i is withdrawn for
// disbursement. Transaction fees accumulate in the fee pool, which — per
// the paper's future-work plan — takes over funding once the Foundation
// pool is exhausted.
type Source struct {
	schedule   Schedule
	foundation *Pool
	fees       *Pool
}

// NewSource creates a funding source with fresh pools.
func NewSource() *Source {
	return &Source{
		foundation: NewFoundationPool(),
		fees:       NewTransactionFeePool(),
	}
}

// FoundationBalance returns the Foundation pool's available Algos.
func (s *Source) FoundationBalance() float64 { return s.foundation.Balance() }

// FeeBalance returns the fee pool's available Algos.
func (s *Source) FeeBalance() float64 { return s.fees.Balance() }

// DepositFees adds collected transaction fees to the fee pool.
func (s *Source) DepositFees(amount float64) error {
	_, err := s.fees.Deposit(amount)
	return err
}

// ErrExhausted signals that neither pool can fund the requested reward.
var ErrExhausted = errors.New("rewards: all reward pools exhausted")

// Withdraw funds the round's reward b: the scheduled R_i is first dripped
// into the Foundation pool, then b is drawn from the Foundation pool
// while it lasts and from the fee pool afterwards. It returns the pool
// that paid ("foundation" or "transaction-fee").
func (s *Source) Withdraw(round uint64, b float64) (string, error) {
	if b < 0 {
		return "", fmt.Errorf("rewards: negative reward %g", b)
	}
	ri, err := s.schedule.RoundReward(round)
	if err != nil {
		return "", err
	}
	if _, err := s.foundation.Deposit(ri); err != nil && !errors.Is(err, ErrCeilingReached) {
		return "", err
	}
	if b > ri {
		return "", fmt.Errorf("rewards: B_i = %g exceeds the scheduled R_i = %g", b, ri)
	}
	if err := s.foundation.Withdraw(b); err == nil {
		return s.foundation.Name(), nil
	}
	// Foundation pool exhausted: fall back to accumulated fees, the
	// paper's planned second phase.
	if err := s.fees.Withdraw(b); err == nil {
		return s.fees.Name(), nil
	}
	return "", ErrExhausted
}
