// Package rewards implements Algorand's reward machinery: the Foundation
// reward pool with its 1.75-billion-Algo ceiling, the transaction-fee
// pool, the 12-period reward schedule of Table III, and the two
// disbursement schemes the paper compares — the Foundation's
// stake-proportional split and the proposed role-based split.
package rewards

import (
	"errors"
	"fmt"
)

// BlocksPerPeriod is the length of one reward period (500k blocks).
const BlocksPerPeriod = 500_000

// FoundationCeiling is the total reward budget of the Foundation pool,
// 1.75 billion Algos.
const FoundationCeiling = 1.75e9

// projectedMillions is Table III: the projected reward for the first 12
// reward periods, in millions of Algos.
var projectedMillions = [12]float64{10, 13, 16, 19, 22, 25, 28, 31, 34, 36, 38, 38}

// Schedule exposes the Table III reward plan.
type Schedule struct{}

// Periods returns the number of scheduled reward periods (12).
func (Schedule) Periods() int { return len(projectedMillions) }

// PeriodReward returns the total reward of period p (1-based), in Algos.
// Periods beyond the published 12 repeat the final value, matching the
// flat tail of the Foundation plan.
func (Schedule) PeriodReward(p int) (float64, error) {
	if p < 1 {
		return 0, fmt.Errorf("rewards: invalid period %d", p)
	}
	if p > len(projectedMillions) {
		p = len(projectedMillions)
	}
	return projectedMillions[p-1] * 1e6, nil
}

// PeriodOfRound maps a round (1-based) to its reward period (1-based).
func (Schedule) PeriodOfRound(round uint64) int {
	if round == 0 {
		return 1
	}
	return int((round-1)/BlocksPerPeriod) + 1
}

// RoundReward returns R_i, the per-round reward for the given round:
// the period total divided by the 500k blocks of the period. Period 1
// yields 10M/500k = 20 Algos per round, as quoted in the paper.
func (s Schedule) RoundReward(round uint64) (float64, error) {
	if round == 0 {
		return 0, errors.New("rewards: rounds are 1-based")
	}
	total, err := s.PeriodReward(s.PeriodOfRound(round))
	if err != nil {
		return 0, err
	}
	return total / BlocksPerPeriod, nil
}

// Pool is a reward reservoir with an optional ceiling on cumulative
// deposits (the Foundation pool caps at 1.75B Algos; the transaction-fee
// pool is uncapped).
type Pool struct {
	name      string
	ceiling   float64 // 0 = uncapped
	deposited float64
	balance   float64
}

// NewFoundationPool creates the capped Foundation reward pool.
func NewFoundationPool() *Pool {
	return &Pool{name: "foundation", ceiling: FoundationCeiling}
}

// NewTransactionFeePool creates the uncapped fee pool that accumulates
// transaction fees for future disbursement.
func NewTransactionFeePool() *Pool {
	return &Pool{name: "transaction-fee"}
}

// Name returns the pool's identifier.
func (p *Pool) Name() string { return p.name }

// Balance returns the currently available Algos.
func (p *Pool) Balance() float64 { return p.balance }

// Deposited returns the cumulative amount ever deposited.
func (p *Pool) Deposited() float64 { return p.deposited }

// ErrPoolExhausted signals a withdrawal exceeding the pool balance.
var ErrPoolExhausted = errors.New("rewards: pool exhausted")

// ErrCeilingReached signals a deposit fully rejected by the pool ceiling.
var ErrCeilingReached = errors.New("rewards: pool ceiling reached")

// Deposit adds amount to the pool, truncating at the ceiling. It returns
// the amount actually accepted and ErrCeilingReached when that is zero.
func (p *Pool) Deposit(amount float64) (float64, error) {
	if amount < 0 {
		return 0, errors.New("rewards: negative deposit")
	}
	if p.ceiling > 0 {
		room := p.ceiling - p.deposited
		if room <= 0 {
			return 0, ErrCeilingReached
		}
		if amount > room {
			amount = room
		}
	}
	p.deposited += amount
	p.balance += amount
	return amount, nil
}

// Withdraw removes amount from the pool.
func (p *Pool) Withdraw(amount float64) error {
	if amount < 0 {
		return errors.New("rewards: negative withdrawal")
	}
	if amount > p.balance+1e-9 {
		return ErrPoolExhausted
	}
	p.balance -= amount
	if p.balance < 0 {
		p.balance = 0
	}
	return nil
}
