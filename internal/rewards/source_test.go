package rewards

import (
	"errors"
	"math"
	"testing"
)

func TestSourceFundsFromFoundationFirst(t *testing.T) {
	s := NewSource()
	from, err := s.Withdraw(1, 5.2)
	if err != nil {
		t.Fatal(err)
	}
	if from != "foundation" {
		t.Errorf("funded from %q, want foundation", from)
	}
	// Round 1 dripped 20 Algos; 5.2 withdrawn.
	if math.Abs(s.FoundationBalance()-14.8) > 1e-9 {
		t.Errorf("foundation balance = %v, want 14.8", s.FoundationBalance())
	}
}

func TestSourceRejectsRewardAboveSchedule(t *testing.T) {
	s := NewSource()
	if _, err := s.Withdraw(1, 25); err == nil {
		t.Error("B_i above R_i accepted")
	}
	if _, err := s.Withdraw(1, -1); err == nil {
		t.Error("negative reward accepted")
	}
}

func TestSourceAccumulatesUnspent(t *testing.T) {
	// Spending less than the drip accumulates savings — the mechanism's
	// selling point ("save more Algos for future use").
	s := NewSource()
	for round := uint64(1); round <= 10; round++ {
		if _, err := s.Withdraw(round, 5); err != nil {
			t.Fatal(err)
		}
	}
	want := 10.0*20 - 10*5
	if math.Abs(s.FoundationBalance()-want) > 1e-9 {
		t.Errorf("foundation balance = %v, want %v", s.FoundationBalance(), want)
	}
}

func TestSourceFallsBackToFees(t *testing.T) {
	s := NewSource()
	// Drain the foundation pool exactly: withdraw the full drip each round.
	for round := uint64(1); round <= 3; round++ {
		if _, err := s.Withdraw(round, 20); err != nil {
			t.Fatal(err)
		}
	}
	if s.FoundationBalance() != 0 {
		t.Fatalf("foundation balance = %v", s.FoundationBalance())
	}
	// Without fees, asking for more than the remaining drip-plus-balance
	// fails... but the drip keeps arriving, so exhaust via oversized ask is
	// rejected by schedule. Instead simulate post-ceiling: deposit to the
	// ceiling, drain, then rely on fees.
	if err := s.DepositFees(100); err != nil {
		t.Fatal(err)
	}
	// Force the foundation pool to its ceiling so the drip stops.
	for {
		if _, err := s.foundation.Deposit(1e9); err != nil {
			break
		}
	}
	if err := s.foundation.Withdraw(s.foundation.Balance()); err != nil {
		t.Fatal(err)
	}
	from, err := s.Withdraw(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if from != "transaction-fee" {
		t.Errorf("funded from %q, want transaction-fee", from)
	}
	if math.Abs(s.FeeBalance()-80) > 1e-9 {
		t.Errorf("fee balance = %v, want 80", s.FeeBalance())
	}
}

func TestSourceExhausted(t *testing.T) {
	s := NewSource()
	for {
		if _, err := s.foundation.Deposit(1e9); err != nil {
			break
		}
	}
	if err := s.foundation.Withdraw(s.foundation.Balance()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Withdraw(5, 20); !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted", err)
	}
}
