package rewards

import (
	"errors"
	"fmt"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
)

// Share is one node's slice of a round's reward.
type Share struct {
	ID     int
	Amount float64
}

// Scheme turns a per-round reward B_i and the realised round roles into
// per-node payouts. Implementations must conserve value: payouts sum to
// B_i (up to rounding) whenever at least one node is eligible.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Distribute splits b Algos over the round participants.
	Distribute(b float64, roles protocol.RoundRoles) ([]Share, error)
}

// ErrNoParticipants is returned when a round has nobody to pay.
var ErrNoParticipants = errors.New("rewards: no participants to reward")

// Foundation is the Algorand Foundation proposal (Eq. 3): everyone online
// is paid b · s_j / S_N regardless of role.
type Foundation struct{}

var _ Scheme = Foundation{}

// Name implements Scheme.
func (Foundation) Name() string { return "foundation" }

// Distribute implements Scheme.
func (Foundation) Distribute(b float64, roles protocol.RoundRoles) ([]Share, error) {
	if b < 0 {
		return nil, fmt.Errorf("rewards: negative reward %g", b)
	}
	all := make([]protocol.RoleStake, 0,
		len(roles.Leaders)+len(roles.Committee)+len(roles.Others))
	all = append(all, roles.Leaders...)
	all = append(all, roles.Committee...)
	all = append(all, roles.Others...)
	total := 0.0
	for _, rs := range all {
		total += rs.Stake
	}
	if total <= 0 {
		return nil, ErrNoParticipants
	}
	shares := make([]Share, 0, len(all))
	for _, rs := range all {
		shares = append(shares, Share{ID: rs.ID, Amount: b * rs.Stake / total})
	}
	return shares, nil
}

// RoleBased is the paper's mechanism (Eq. 5): αb to leaders, βb to
// committee members, (1−α−β)b to the remaining online nodes, each pool
// split by stake within the group. When a group is empty its pool is
// redistributed to the "others" pool so value is conserved.
type RoleBased struct {
	Alpha, Beta float64
}

var _ Scheme = RoleBased{}

// Name implements Scheme.
func (r RoleBased) Name() string { return "role-based" }

// Gamma returns 1 − α − β.
func (r RoleBased) Gamma() float64 { return 1 - r.Alpha - r.Beta }

// Validate checks 0 < α, β and α + β < 1.
func (r RoleBased) Validate() error {
	if r.Alpha <= 0 || r.Beta <= 0 || r.Alpha+r.Beta >= 1 {
		return fmt.Errorf("rewards: invalid shares α=%g β=%g", r.Alpha, r.Beta)
	}
	return nil
}

// Distribute implements Scheme.
func (r RoleBased) Distribute(b float64, roles protocol.RoundRoles) ([]Share, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if b < 0 {
		return nil, fmt.Errorf("rewards: negative reward %g", b)
	}
	stakeOf := func(rs []protocol.RoleStake) float64 {
		t := 0.0
		for _, x := range rs {
			t += x.Stake
		}
		return t
	}
	sl, sm, sk := stakeOf(roles.Leaders), stakeOf(roles.Committee), stakeOf(roles.Others)
	if sl+sm+sk <= 0 {
		return nil, ErrNoParticipants
	}

	alphaPool, betaPool, gammaPool := r.Alpha*b, r.Beta*b, r.Gamma()*b
	if sl <= 0 {
		gammaPool += alphaPool
		alphaPool = 0
	}
	if sm <= 0 {
		gammaPool += betaPool
		betaPool = 0
	}
	if sk <= 0 {
		// No plain online nodes: fold γ into the committee (or leaders).
		switch {
		case sm > 0:
			betaPool += gammaPool
		default:
			alphaPool += gammaPool
		}
		gammaPool = 0
	}

	var shares []Share
	appendPool := func(pool float64, group []protocol.RoleStake, total float64) {
		if pool <= 0 || total <= 0 {
			return
		}
		for _, rs := range group {
			shares = append(shares, Share{ID: rs.ID, Amount: pool * rs.Stake / total})
		}
	}
	appendPool(alphaPool, roles.Leaders, sl)
	appendPool(betaPool, roles.Committee, sm)
	appendPool(gammaPool, roles.Others, sk)
	return shares, nil
}

// TotalOf sums the amounts of a share list.
func TotalOf(shares []Share) float64 {
	t := 0.0
	for _, s := range shares {
		t += s.Amount
	}
	return t
}
