// Command simd runs the long-lived simulation daemon and its client.
//
// Usage:
//
//	simd serve  [-listen HOST:PORT] [-data DIR] [-maxWorkers N] [-cacheCells N] [-drainTimeout D]
//	simd submit [-addr URL] [-kind grid|scenario] [job flags] [-out DIR | -stream | -wait] [name ...]
//	simd watch  [-addr URL] -job ID [-quiet]
//
// serve starts the daemon: an HTTP service accepting experiment jobs
// (POST /api/v1/jobs) and streaming each job's results as the NDJSON
// wire encoding of the experiment sink events (GET
// /api/v1/jobs/<id>/stream; add ?sse=1 or Accept: text/event-stream
// for SSE framing). The obs introspection routes — /metrics,
// /debug/vars, /debug/pprof — are mounted on the same listener, with
// the daemon's own simd_* metric families alongside the simulation
// counters. Jobs share a fixed worker-slot budget (-maxWorkers) and
// queue FIFO; a grid whose cells already ran — in any earlier job
// sharing their configuration — streams them from the completed-cell
// cache instead of re-simulating, byte-identically. With -data set,
// grid jobs checkpoint every completed cell; on SIGINT/SIGTERM the
// daemon drains (running grids stop at the next cell boundary) and a
// restarted daemon resumes interrupted jobs automatically, producing
// the remaining cells byte-identical to an uninterrupted run.
//
// submit builds a job from the familiar CLI flags (grid jobs take
// -fullNodes/-fullRounds/-fullSeeds plus positional scenario names,
// exactly like `scenario -full`; scenario jobs take
// -scenario/-nodes/-rounds/-runs/-seed) and posts it to the daemon.
// With -out DIR it follows the stream and replays it through the CSV
// sink stack, writing the exact files `scenario -full` would have
// written — byte for byte, whatever worker budget or cache state served
// the job. With -stream it copies the raw NDJSON to stdout; with -wait
// it just waits for completion. Like the CLI, submit exits non-zero if
// the job's audits observe any safety violation.
//
// watch follows a running job, printing the per-cell audit lines the
// batch CLI prints, then the job's final state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/cliutil"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/simd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "simd:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: simd serve|submit|watch [flags]")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:], stdout, stderr)
	case "submit":
		return runSubmit(args[1:], stdout, stderr)
	case "watch":
		return runWatch(args[1:], stdout, stderr)
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, submit or watch)", args[0])
	}
}

func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("simd serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen       = fs.String("listen", "127.0.0.1:8080", "HOST:PORT to serve the job API and /metrics on")
		dataDir      = fs.String("data", "simd-data", "directory for job specs and grid checkpoints (empty disables persistence and resume)")
		maxWorkers   = fs.Int("maxWorkers", 0, "worker-slot budget shared by all jobs (0 = GOMAXPROCS)")
		cacheCells   = fs.Int("cacheCells", 0, "completed-cell cache capacity in entries (0 = 4096, negative disables)")
		drainTimeout = fs.Duration("drainTimeout", time.Minute, "how long shutdown waits for running jobs to reach a cell boundary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.NoArgs(fs); err != nil {
		return err
	}
	daemon, err := simd.New(simd.Config{
		DataDir:    *dataDir,
		MaxWorkers: *maxWorkers,
		CacheCells: *cacheCells,
		Logf:       func(format string, a ...any) { fmt.Fprintf(stdout, format, a...) },
	})
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "simd: serving on http://%s (budget %d workers)\n", lis.Addr(), daemon.Budget().Total())
	srv := &http.Server{Handler: daemon, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "simd: draining — running grids stop at the next cell boundary; checkpoints resume them on restart")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := daemon.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "simd: drain incomplete: %v\n", err)
	}
	return srv.Close()
}

func runSubmit(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("simd submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		client = cliutil.Client(fs)
		kind   = fs.String("kind", "grid", "job kind: grid (scenario×seed grid) or scenario (per-scenario sweep)")

		// Grid axes, spelled like `scenario -full`.
		fullNodes  = fs.Int("fullNodes", 0, "grid: network size per cell (0 = daemon default 500)")
		fullRounds = fs.Int("fullRounds", 0, "grid: rounds per cell (0 = daemon default 12)")
		fullSeeds  = fs.Int("fullSeeds", 0, "grid: seed axis 1..N (0 = daemon default 3)")

		// Sweep axes, spelled like plain `scenario`.
		scenarioName = fs.String("scenario", "", "sweep: scenario name (empty = eclipse_equivocation)")
		nodes        = fs.Int("nodes", 0, "sweep: network size per run (0 = daemon default 100)")
		rounds       = fs.Int("rounds", 0, "sweep: rounds per run (0 = daemon default 12)")
		runs         = fs.Int("runs", 0, "sweep: independent runs (0 = daemon default 4)")
		seed         = cliutil.Seed(fs, 0, "sweep: base seed (0 = daemon default 1)")

		workers     = cliutil.Workers(fs)
		weights     = cliutil.Weights(fs)
		sparseFlags = cliutil.Sparse(fs)

		outDir    = fs.String("out", "", "grid: follow the stream and write the scenario -full CSV files here")
		streamOut = fs.Bool("stream", false, "follow the stream and copy the raw NDJSON to stdout")
		wait      = fs.Bool("wait", false, "wait for the job to settle before exiting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	common := simd.CommonSpec{
		Workers:       *workers,
		WeightBackend: weights.Backend(),
		Weights:       weights.Spec(),
		Sparse:        sparseFlags.Mode(),
		TauStep:       sparseFlags.TauStepValue(),
		TauFinal:      sparseFlags.TauFinalValue(),
	}
	var req simd.JobRequest
	var gridSpec simd.GridJobSpec
	switch *kind {
	case "grid":
		gridSpec = simd.GridJobSpec{
			CommonSpec: common,
			Scenarios:  fs.Args(),
			Seeds:      *fullSeeds,
			Nodes:      *fullNodes,
			Rounds:     *fullRounds,
		}
		req = simd.JobRequest{Kind: simd.KindGrid, Grid: &gridSpec}
	case "scenario":
		if err := cliutil.NoArgs(fs); err != nil {
			return err
		}
		if *outDir != "" {
			return errors.New("-out reconstructs grid CSVs; use -kind grid (or -stream for raw events)")
		}
		req = simd.JobRequest{Kind: simd.KindScenario, Scenario: &simd.ScenarioJobSpec{
			CommonSpec: common,
			Scenario:   *scenarioName,
			Nodes:      *nodes,
			Rounds:     *rounds,
			Runs:       *runs,
			Seed:       *seed,
		}}
	default:
		return fmt.Errorf("unknown -kind %q (want grid or scenario)", *kind)
	}

	c := &simd.Client{Base: client.BaseURL()}
	st, err := c.Submit(req)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "submitted %s (%s, %d cells)\n", st.ID, st.Kind, st.Cells)

	follow := *outDir != "" || *streamOut || *wait
	if !follow {
		fmt.Fprintln(stdout, st.ID)
		return nil
	}
	stream, err := c.Stream(st.ID)
	if err != nil {
		return err
	}
	defer stream.Close()
	violations := 0
	switch {
	case *outDir != "":
		if violations, err = simd.WriteGridOutputs(stream, gridSpec, *outDir, stdout); err != nil {
			return err
		}
	case *streamOut:
		if _, err := io.Copy(stdout, stream); err != nil {
			return err
		}
	default:
		if _, err := io.Copy(io.Discard, stream); err != nil {
			return err
		}
	}
	return settle(c, st.ID, violations, stderr)
}

// settle fetches the job's final state and maps it to the CLI verdict.
func settle(c *simd.Client, id string, violations int, stderr io.Writer) error {
	final, err := c.Status(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%s %s (%d/%d cells, %d cached, %d restored)\n",
		final.ID, final.State, final.CellsDone, final.Cells, final.CachedCells, final.RestoredCells)
	if final.State != simd.JobDone {
		return fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	if violations > 0 {
		return fmt.Errorf("safety audit failed: %d conflicting-finalisation round(s) across the grid", violations)
	}
	return nil
}

func runWatch(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("simd watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		client = cliutil.Client(fs)
		jobID  = fs.String("job", "", "job ID to follow")
		quiet  = fs.Bool("quiet", false, "suppress per-cell audit lines; print only the final state")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.NoArgs(fs); err != nil {
		return err
	}
	if *jobID == "" {
		jobs, err := (&simd.Client{Base: client.BaseURL()}).List()
		if err != nil {
			return err
		}
		for _, st := range jobs {
			fmt.Fprintf(stdout, "%-8s %-9s %-12s %d/%d cells\n", st.ID, st.Kind, st.State, st.CellsDone, st.Cells)
		}
		return nil
	}
	c := &simd.Client{Base: client.BaseURL()}
	stream, err := c.Stream(*jobID)
	if err != nil {
		return err
	}
	defer stream.Close()
	var sink experiments.Sink = &experiments.GridTextSink{W: stdout}
	if *quiet {
		sink = &experiments.GridTextSink{W: io.Discard}
	}
	if err := experiments.ReplayWire(stream, sink); err != nil {
		// A drained job's stream ends mid-grid; report the state instead.
		if !strings.Contains(err.Error(), "stream ended inside") {
			return err
		}
	}
	return settle(c, *jobID, 0, stderr)
}
