package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"no subcommand":          {},
		"unknown subcommand":     {"frobnicate"},
		"serve unknown flag":     {"serve", "-no-such-flag"},
		"serve stray args":       {"serve", "extra"},
		"submit unknown kind":    {"submit", "-kind", "sideways"},
		"submit sweep with args": {"submit", "-kind", "scenario", "stray"},
		"submit sweep with out":  {"submit", "-kind", "scenario", "-out", t.TempDir()},
		"watch stray args":       {"watch", "-job", "job-1", "stray"},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(args, &stdout, &stderr); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

// TestServeSmoke boots the daemon on an ephemeral port, submits a tiny
// sweep through the submit subcommand, and shuts the server down — the
// CLI wiring end to end, without touching the network beyond loopback.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon round-trip in -short mode")
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	// runServe blocks until a process signal, so the goroutine lives for
	// the rest of the test binary — the channel only catches early exits.
	serveDone := make(chan error, 1)
	var serveOut, serveErr bytes.Buffer
	go func() {
		serveDone <- run([]string{"serve", "-listen", addr, "-data", t.TempDir()}, &serveOut, &serveErr)
	}()

	var stdout, stderr bytes.Buffer
	args := []string{
		"submit", "-addr", "http://" + addr, "-kind", "scenario",
		"-scenario", "honest_baseline", "-nodes", "40", "-rounds", "3", "-runs", "2",
		"-stream",
	}
	var submitErr error
	for try := 0; try < 100; try++ {
		stdout.Reset()
		stderr.Reset()
		if submitErr = run(args, &stdout, &stderr); submitErr == nil {
			break
		}
		if !strings.Contains(submitErr.Error(), "connection refused") {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if submitErr != nil {
		t.Fatalf("submit: %v\nstderr: %s\nserve log: %s", submitErr, stderr.String(), serveOut.String())
	}
	if !strings.Contains(stdout.String(), `"event":"cell_start"`) {
		t.Fatalf("streamed output carries no cell_start event:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "done") {
		t.Fatalf("submit did not report a settled job:\n%s", stderr.String())
	}
	select {
	case err := <-serveDone:
		t.Fatalf("serve exited early: %v\n%s", err, serveErr.String())
	default:
	}
}
