// Command benchgen regenerates every table and figure of the paper's
// evaluation section and writes them as CSV files plus a textual summary.
//
// Usage:
//
//	benchgen [-out DIR] [-full] [-workers N] [-pr N] [-benchout FILE] [table3|fig3|fig5|fig6|fig7|equilibrium|bench|all]
//	benchgen [-largeNodes N] [-largeRounds N] [-largeRuns N] fig3large
//	benchgen [-baseline FILE] -candidate FILE compare
//	benchgen -promfile FILE [-requireFamilies a,b,c] promlint
//
// With -full, the paper-scale configurations are used (500k nodes, 100-200
// runs); the default configurations finish on a laptop in minutes.
// -workers caps the shared deterministic run pool (0 = GOMAXPROCS); every
// worker count yields bit-for-bit identical CSVs.
//
// The fig3large target scales the defection experiment far beyond the
// paper's 100 nodes via the sparse-committee round path (absolute
// committee taus, see internal/protocol): -largeNodes picks the
// population (default 500000), -largeRounds/-largeRuns trim the sweep for
// CI smokes (0 keeps the LargeFig3Config defaults). It writes
// fig3large_<nodes>.csv; the paper's fig3 target is untouched.
//
// The bench target measures the hot-path workloads (one BA* round, one
// sortition selection, a Fig. 3-class simulation, a 50k-node sparse
// round) plus the deterministic headline figure metrics and writes them
// as JSON to -benchout (default BENCH_<pr>.json, with <pr> from -pr),
// the persisted perf trajectory future PRs compare against; see README
// "Benchmark pipeline".
//
// The compare target is the CI benchmark-regression gate: it diffs the
// -candidate BENCH file against -baseline (default: the newest
// checked-in BENCH_<n>.json) and exits non-zero on a >20% ns/op or an
// over-slack allocs/op regression in the gated workloads, or on any
// headline figure metric diff. The ns/op gate and the tight allocs
// slack only apply when both files provably ran on the same hardware
// (matching CPU model); against unknown hardware the allocs slack
// widens and ns/op is advisory. With -selfcheck the target instead
// measures the current build twice in-process and fails when the gate
// rules cannot tell the two runs apart — that failure indicts the gate
// configuration (tolerances too tight for the runner), not the build.
//
// The promlint target validates a captured /metrics scrape (-promfile)
// as well-formed Prometheus text exposition and checks the families
// named by -requireFamilies are present — the CI metrics-smoke job's
// scrape validator.
//
// -metricsAddr serves the live telemetry registry (/metrics,
// /debug/vars, /debug/pprof) while targets run; -trace records a
// Chrome-trace timeline of the first simulated run of the fig3 or
// fig3large target. Both are observation-only: every CSV and BENCH
// file stays byte-identical with them on or off.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsn2020-algorand/incentives/internal/analysis"
	"github.com/dsn2020-algorand/incentives/internal/cliutil"
	"github.com/dsn2020-algorand/incentives/internal/evolution"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/obs"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		outDir      = fs.String("out", "results", "output directory for CSV files")
		full        = fs.Bool("full", false, "use paper-scale configurations")
		workers     = cliutil.Workers(fs)
		benchPR     = fs.Int("pr", 0, "PR number recorded in the bench target's JSON (also names the default -benchout file); required by the bench target")
		benchOut    = fs.String("benchout", "", "output path for the bench target's JSON (default BENCH_<pr>.json)")
		baseline    = fs.String("baseline", "", "compare target: baseline BENCH file (default: highest-numbered BENCH_<n>.json in the working directory)")
		candidate   = fs.String("candidate", "", "compare target: candidate BENCH file (default: the -benchout/-pr path)")
		selfCheck   = fs.Bool("selfcheck", false, "compare target: instead of diffing files, measure the current build twice and fail if the gate rules cannot tell the two runs apart — a gate-configuration check, not a build check")
		largeNodes  = fs.Int("largeNodes", 500_000, "fig3large: population size")
		largeRounds = fs.Int("largeRounds", 0, "fig3large: rounds per run (0 = LargeFig3Config default)")
		largeRuns   = fs.Int("largeRuns", 0, "fig3large: runs per defection rate (0 = LargeFig3Config default)")
		promFile    = fs.String("promfile", "", "promlint target: captured /metrics scrape to validate")
		promWant    = fs.String("requireFamilies", "", "promlint target: comma-separated metric families that must be present")
		obsFlags    = cliutil.Obs(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(stdout); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if *benchOut == "" && *benchPR > 0 {
		*benchOut = fmt.Sprintf("BENCH_%d.json", *benchPR)
	}
	if *candidate == "" {
		*candidate = *benchOut
	}

	targets := fs.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = []string{
			"table3", "fig3", "fig5", "fig6", "fig7", "equilibrium",
			"evolution", "weaksync", "costs", "sensitivity", "mixed",
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, target := range targets {
		fmt.Fprintf(stdout, "==> %s\n", target)
		var err error
		switch target {
		case "table3":
			err = genTable3(stdout, *outDir)
		case "fig3":
			err = genFig3(stdout, *outDir, *full, *workers, sess.Trace())
		case "fig3large":
			err = genFig3Large(stdout, *outDir, *largeNodes, *largeRounds, *largeRuns, *workers, sess.Trace())
		case "fig5":
			err = genFig5(stdout, *outDir, *workers)
		case "fig6":
			err = genFig6(stdout, *outDir, *full, *workers)
		case "fig7":
			err = genFig7(stdout, *outDir, *full, *workers)
		case "equilibrium":
			err = genEquilibrium(stdout, *outDir, *workers)
		case "evolution":
			err = genEvolution(stdout, *outDir)
		case "weaksync":
			err = genWeakSync(stdout, *outDir, *workers)
		case "costs":
			err = genCosts(stdout, *outDir)
		case "sensitivity":
			err = genSensitivity(stdout, *outDir)
		case "mixed":
			err = genMixed(stdout, *outDir, *workers)
		case "bench":
			// Refuse to guess the PR number: defaulting it would let a
			// future PR silently overwrite an older BENCH_<pr>.json.
			if *benchPR <= 0 {
				err = fmt.Errorf("-pr is required (e.g. -pr 2 writes BENCH_2.json)")
			} else {
				err = genBench(*benchOut, *benchPR)
			}
		case "compare":
			if *selfCheck {
				err = runSelfCheck(*benchPR)
			} else {
				err = runCompare(*baseline, *candidate)
			}
		case "promlint":
			err = runPromLint(*promFile, *promWant)
		default:
			err = fmt.Errorf("unknown target %q", target)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func writeCSV(stdout io.Writer, outDir, name string, table *stats.Table) error {
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := table.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

func genTable3(stdout io.Writer, outDir string) error {
	res, err := experiments.RunTable3()
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	return writeCSV(stdout, outDir, "table3.csv", res.Table())
}

func genFig3(stdout io.Writer, outDir string, full bool, workers int, trace *obs.Trace) error {
	cfg := experiments.DefaultFig3Config()
	if full {
		cfg = experiments.FullFig3Config()
	}
	cfg.Workers = workers
	cfg.Trace = trace
	res, err := experiments.RunFig3(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	return writeCSV(stdout, outDir, "fig3.csv", res.Table())
}

// genFig3Large is the beyond-paper-scale defection sweep: LargeFig3Config
// sets absolute committee taus, so populations of 4096+ nodes take the
// sparse-committee round path and per-round cost tracks the committee
// size rather than the population.
func genFig3Large(stdout io.Writer, outDir string, nodes, rounds, runs, workers int, trace *obs.Trace) error {
	cfg := experiments.LargeFig3Config(nodes)
	if rounds > 0 {
		cfg.Rounds = rounds
	}
	if runs > 0 {
		cfg.Runs = runs
	}
	cfg.Workers = workers
	cfg.Trace = trace
	fmt.Fprintf(stdout, "fig3 at %d nodes (%d rounds, %d runs/rate, tauStep %.0f, tauFinal %.0f)\n",
		cfg.Nodes, cfg.Rounds, cfg.Runs, cfg.Params.TauStep, cfg.Params.TauFinal)
	res, err := experiments.RunFig3(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	return writeCSV(stdout, outDir, fmt.Sprintf("fig3large_%d.csv", cfg.Nodes), res.Table())
}

func genFig5(stdout io.Writer, outDir string, workers int) error {
	cfg := experiments.DefaultFig5Config()
	cfg.Workers = workers
	res, err := experiments.RunFig5(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	return writeCSV(stdout, outDir, "fig5.csv", res.Table())
}

func genFig6(stdout io.Writer, outDir string, full bool, workers int) error {
	cfg := experiments.DefaultFig6Config()
	if full {
		cfg = experiments.FullFig6Config()
	}
	cfg.Workers = workers
	res, err := experiments.RunFig6(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	for _, panel := range res.Panels {
		h, err := panel.Histogram(cfg.HistogramBins)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nB_i distribution for %s:\n%s", panel.Distribution, h.Render(50))
	}
	return writeCSV(stdout, outDir, "fig6.csv", res.Table())
}

func genFig7(stdout io.Writer, outDir string, full bool, workers int) error {
	cfg := experiments.DefaultFig7Config()
	if full {
		cfg = experiments.FullFig7Config()
	}
	cfg.Workers = workers
	res, err := experiments.RunFig7(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	return writeCSV(stdout, outDir, "fig7.csv", res.Table())
}

// genWeakSync reproduces the Fig. 3-(c) asynchrony spike and recovery.
func genWeakSync(stdout io.Writer, outDir string, workers int) error {
	cfg := experiments.DefaultWeakSyncConfig()
	cfg.Workers = workers
	res, err := experiments.RunWeakSync(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	return writeCSV(stdout, outDir, "weaksync.csv", res.Table())
}

// genCosts compares measured protocol expenditure against the Eq. 1-2
// cost model.
func genCosts(stdout io.Writer, outDir string) error {
	res, err := experiments.RunCosts(experiments.DefaultCostsConfig())
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	return writeCSV(stdout, outDir, "costs.csv", res.Table())
}

// genMixed sweeps selfish / malicious / faulty behaviour mixes.
func genMixed(stdout io.Writer, outDir string, workers int) error {
	cfg := experiments.DefaultMixedConfig()
	cfg.Workers = workers
	res, err := experiments.RunMixed(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	return writeCSV(stdout, outDir, "mixed.csv", res.Table())
}

// genSensitivity reports the elasticities of B* with respect to every
// Algorithm 1 input.
func genSensitivity(stdout io.Writer, outDir string) error {
	in := experiments.PaperFig5Inputs()
	sens, err := analysis.MechanismSensitivities(in, 0.01)
	if err != nil {
		return err
	}
	t := &stats.Table{}
	elasticities := make([]float64, len(sens))
	for i, s := range sens {
		fmt.Fprintf(stdout, "elasticity of B* wrt %-5s = %+.3f\n", s.Param, s.Elasticity)
		elasticities[i] = s.Elasticity
	}
	t.AddColumn("elasticity", elasticities)
	if top, ok := analysis.MostSensitive(sens); ok {
		fmt.Fprintf(stdout, "most sensitive input: %s (watch the %s cost gap)\n", top.Param, top.Param)
	}
	return writeCSV(stdout, outDir, "sensitivity.csv", t)
}

// genEvolution runs the extension experiment: repeated-round best-response
// dynamics under both reward schemes (see internal/evolution).
func genEvolution(stdout io.Writer, outDir string) error {
	t := &stats.Table{}
	for _, scheme := range []evolution.SchemeKind{evolution.SchemeFoundation, evolution.SchemeRoleBased} {
		res, err := evolution.Run(evolution.DefaultConfig(scheme))
		if err != nil {
			return err
		}
		pl, pm := res.PrefixStratCoop()
		fmt.Fprintf(stdout, "%-11s survival %3d rounds, block rate %.2f, producing-prefix dispositions: leaders %.3f committee %.3f\n",
			scheme, res.SurvivalRounds(), res.BlockRate(), pl, pm)
		rounds := make([]float64, len(res.Stats))
		stratM := make([]float64, len(res.Stats))
		stratK := make([]float64, len(res.Stats))
		produced := make([]float64, len(res.Stats))
		for i, s := range res.Stats {
			rounds[i] = float64(s.Round)
			stratM[i] = s.StratCommittee
			stratK[i] = s.StratOthers
			if s.BlockProduced {
				produced[i] = 1
			}
		}
		prefix := scheme.String() + "_"
		if len(t.Columns) == 0 {
			t.AddColumn("round", rounds)
		}
		t.AddColumn(prefix+"strat_committee", stratM)
		t.AddColumn(prefix+"strat_others", stratK)
		t.AddColumn(prefix+"produced", produced)
	}
	return writeCSV(stdout, outDir, "evolution.csv", t)
}

func genEquilibrium(stdout io.Writer, outDir string, workers int) error {
	cfg := experiments.DefaultEquilibriumConfig()
	cfg.Workers = workers
	res, err := experiments.RunEquilibrium(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	t := &stats.Table{}
	n := float64(res.Config.Samples)
	t.AddColumn("theorem1", []float64{float64(res.Theorem1) / n})
	t.AddColumn("theorem2", []float64{float64(res.Theorem2) / n})
	t.AddColumn("lemma1", []float64{float64(res.Lemma1) / n})
	t.AddColumn("theorem3", []float64{float64(res.Theorem3) / n})
	t.AddColumn("tightness", []float64{float64(res.Tightness) / n})
	return writeCSV(stdout, outDir, "equilibrium.csv", t)
}
