// Command benchgen regenerates every table and figure of the paper's
// evaluation section and writes them as CSV files plus a textual summary.
//
// Usage:
//
//	benchgen [-out DIR] [-full] [-workers N] [-pr N] [-benchout FILE] [table3|fig3|fig5|fig6|fig7|equilibrium|bench|all]
//	benchgen [-baseline FILE] -candidate FILE compare
//
// With -full, the paper-scale configurations are used (500k nodes, 100-200
// runs); the default configurations finish on a laptop in minutes.
// -workers caps the shared deterministic run pool (0 = GOMAXPROCS); every
// worker count yields bit-for-bit identical CSVs.
//
// The bench target measures the hot-path workloads (one BA* round, one
// sortition selection, a Fig. 3-class simulation) plus the deterministic
// headline figure metrics and writes them as JSON to -benchout (default
// BENCH_<pr>.json, with <pr> from -pr), the persisted perf trajectory
// future PRs compare against; see README "Benchmark pipeline".
//
// The compare target is the CI benchmark-regression gate: it diffs the
// -candidate BENCH file against -baseline (default: the newest
// checked-in BENCH_<n>.json) and exits non-zero on a >20% ns/op or any
// allocs/op regression in the gated workloads, or on any headline
// figure metric diff.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/dsn2020-algorand/incentives/internal/analysis"
	"github.com/dsn2020-algorand/incentives/internal/evolution"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

func main() {
	outDir := flag.String("out", "results", "output directory for CSV files")
	full := flag.Bool("full", false, "use paper-scale configurations")
	workers := flag.Int("workers", 0, "run-pool workers (0 = GOMAXPROCS); results are identical for every value")
	benchPR := flag.Int("pr", 0, "PR number recorded in the bench target's JSON (also names the default -benchout file); required by the bench target")
	benchOut := flag.String("benchout", "", "output path for the bench target's JSON (default BENCH_<pr>.json)")
	baseline := flag.String("baseline", "", "compare target: baseline BENCH file (default: highest-numbered BENCH_<n>.json in the working directory)")
	candidate := flag.String("candidate", "", "compare target: candidate BENCH file (default: the -benchout/-pr path)")
	flag.Parse()
	if *benchOut == "" && *benchPR > 0 {
		*benchOut = fmt.Sprintf("BENCH_%d.json", *benchPR)
	}
	if *candidate == "" {
		*candidate = *benchOut
	}

	targets := flag.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = []string{
			"table3", "fig3", "fig5", "fig6", "fig7", "equilibrium",
			"evolution", "weaksync", "costs", "sensitivity", "mixed",
		}
	}
	if err := run(*outDir, *full, *workers, *benchPR, *benchOut, *baseline, *candidate, targets); err != nil {
		log.Fatal(err)
	}
}

func run(outDir string, full bool, workers, benchPR int, benchOut, baseline, candidate string, targets []string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, target := range targets {
		fmt.Printf("==> %s\n", target)
		var err error
		switch target {
		case "table3":
			err = genTable3(outDir)
		case "fig3":
			err = genFig3(outDir, full, workers)
		case "fig5":
			err = genFig5(outDir, workers)
		case "fig6":
			err = genFig6(outDir, full, workers)
		case "fig7":
			err = genFig7(outDir, full, workers)
		case "equilibrium":
			err = genEquilibrium(outDir, workers)
		case "evolution":
			err = genEvolution(outDir)
		case "weaksync":
			err = genWeakSync(outDir, workers)
		case "costs":
			err = genCosts(outDir)
		case "sensitivity":
			err = genSensitivity(outDir)
		case "mixed":
			err = genMixed(outDir, workers)
		case "bench":
			// Refuse to guess the PR number: defaulting it would let a
			// future PR silently overwrite an older BENCH_<pr>.json.
			if benchPR <= 0 {
				err = fmt.Errorf("-pr is required (e.g. -pr 2 writes BENCH_2.json)")
			} else {
				err = genBench(benchOut, benchPR)
			}
		case "compare":
			err = runCompare(baseline, candidate)
		default:
			err = fmt.Errorf("unknown target %q", target)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		fmt.Println()
	}
	return nil
}

func writeCSV(outDir, name string, table *stats.Table) error {
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := table.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func genTable3(outDir string) error {
	res, err := experiments.RunTable3()
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	return writeCSV(outDir, "table3.csv", res.Table())
}

func genFig3(outDir string, full bool, workers int) error {
	cfg := experiments.DefaultFig3Config()
	if full {
		cfg = experiments.FullFig3Config()
	}
	cfg.Workers = workers
	res, err := experiments.RunFig3(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	return writeCSV(outDir, "fig3.csv", res.Table())
}

func genFig5(outDir string, workers int) error {
	cfg := experiments.DefaultFig5Config()
	cfg.Workers = workers
	res, err := experiments.RunFig5(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	return writeCSV(outDir, "fig5.csv", res.Table())
}

func genFig6(outDir string, full bool, workers int) error {
	cfg := experiments.DefaultFig6Config()
	if full {
		cfg = experiments.FullFig6Config()
	}
	cfg.Workers = workers
	res, err := experiments.RunFig6(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	for _, panel := range res.Panels {
		h, err := panel.Histogram(cfg.HistogramBins)
		if err != nil {
			return err
		}
		fmt.Printf("\nB_i distribution for %s:\n%s", panel.Distribution, h.Render(50))
	}
	return writeCSV(outDir, "fig6.csv", res.Table())
}

func genFig7(outDir string, full bool, workers int) error {
	cfg := experiments.DefaultFig7Config()
	if full {
		cfg = experiments.FullFig7Config()
	}
	cfg.Workers = workers
	res, err := experiments.RunFig7(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	return writeCSV(outDir, "fig7.csv", res.Table())
}

// genWeakSync reproduces the Fig. 3-(c) asynchrony spike and recovery.
func genWeakSync(outDir string, workers int) error {
	cfg := experiments.DefaultWeakSyncConfig()
	cfg.Workers = workers
	res, err := experiments.RunWeakSync(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	return writeCSV(outDir, "weaksync.csv", res.Table())
}

// genCosts compares measured protocol expenditure against the Eq. 1-2
// cost model.
func genCosts(outDir string) error {
	res, err := experiments.RunCosts(experiments.DefaultCostsConfig())
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	return writeCSV(outDir, "costs.csv", res.Table())
}

// genMixed sweeps selfish / malicious / faulty behaviour mixes.
func genMixed(outDir string, workers int) error {
	cfg := experiments.DefaultMixedConfig()
	cfg.Workers = workers
	res, err := experiments.RunMixed(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	return writeCSV(outDir, "mixed.csv", res.Table())
}

// genSensitivity reports the elasticities of B* with respect to every
// Algorithm 1 input.
func genSensitivity(outDir string) error {
	in := experiments.PaperFig5Inputs()
	sens, err := analysis.MechanismSensitivities(in, 0.01)
	if err != nil {
		return err
	}
	t := &stats.Table{}
	elasticities := make([]float64, len(sens))
	for i, s := range sens {
		fmt.Printf("elasticity of B* wrt %-5s = %+.3f\n", s.Param, s.Elasticity)
		elasticities[i] = s.Elasticity
	}
	t.AddColumn("elasticity", elasticities)
	if top, ok := analysis.MostSensitive(sens); ok {
		fmt.Printf("most sensitive input: %s (watch the %s cost gap)\n", top.Param, top.Param)
	}
	return writeCSV(outDir, "sensitivity.csv", t)
}

// genEvolution runs the extension experiment: repeated-round best-response
// dynamics under both reward schemes (see internal/evolution).
func genEvolution(outDir string) error {
	t := &stats.Table{}
	for _, scheme := range []evolution.SchemeKind{evolution.SchemeFoundation, evolution.SchemeRoleBased} {
		res, err := evolution.Run(evolution.DefaultConfig(scheme))
		if err != nil {
			return err
		}
		pl, pm := res.PrefixStratCoop()
		fmt.Printf("%-11s survival %3d rounds, block rate %.2f, producing-prefix dispositions: leaders %.3f committee %.3f\n",
			scheme, res.SurvivalRounds(), res.BlockRate(), pl, pm)
		rounds := make([]float64, len(res.Stats))
		stratM := make([]float64, len(res.Stats))
		stratK := make([]float64, len(res.Stats))
		produced := make([]float64, len(res.Stats))
		for i, s := range res.Stats {
			rounds[i] = float64(s.Round)
			stratM[i] = s.StratCommittee
			stratK[i] = s.StratOthers
			if s.BlockProduced {
				produced[i] = 1
			}
		}
		prefix := scheme.String() + "_"
		if len(t.Columns) == 0 {
			t.AddColumn("round", rounds)
		}
		t.AddColumn(prefix+"strat_committee", stratM)
		t.AddColumn(prefix+"strat_others", stratK)
		t.AddColumn(prefix+"produced", produced)
	}
	return writeCSV(outDir, "evolution.csv", t)
}

func genEquilibrium(outDir string, workers int) error {
	cfg := experiments.DefaultEquilibriumConfig()
	cfg.Workers = workers
	res, err := experiments.RunEquilibrium(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	t := &stats.Table{}
	n := float64(res.Config.Samples)
	t.AddColumn("theorem1", []float64{float64(res.Theorem1) / n})
	t.AddColumn("theorem2", []float64{float64(res.Theorem2) / n})
	t.AddColumn("lemma1", []float64{float64(res.Lemma1) / n})
	t.AddColumn("theorem3", []float64{float64(res.Theorem3) / n})
	t.AddColumn("tightness", []float64{float64(res.Tightness) / n})
	return writeCSV(outDir, "equilibrium.csv", t)
}
