package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// runPromLint is the promlint target: it validates that -promfile holds
// well-formed Prometheus text exposition (version 0.0.4) and, when
// -requireFamilies is set, that every named metric family is present.
// The CI metrics-smoke job scrapes a live /metrics endpoint mid-run and
// feeds the capture through here, so a malformed line or a silently
// vanished family fails the build instead of a dashboard.
func runPromLint(path, require string) error {
	if path == "" {
		return fmt.Errorf("promlint: -promfile FILE is required (a captured /metrics scrape)")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	families, err := obs.LintPrometheus(f)
	if err != nil {
		return fmt.Errorf("promlint: %s: %w", path, err)
	}
	have := make(map[string]bool, len(families))
	for _, fam := range families {
		have[fam] = true
	}
	var missing []string
	for _, want := range strings.Split(require, ",") {
		if want = strings.TrimSpace(want); want != "" && !have[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("promlint: %s is valid but missing required families: %s", path, strings.Join(missing, ", "))
	}
	fmt.Printf("promlint: %s ok (%d families)\n", path, len(families))
	return nil
}
