package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// BenchResult is one measured workload in the persisted benchmark file.
type BenchResult struct {
	// NsPerOp is wall time per operation (one round, one select, …).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from the Go benchmark memstats.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Iterations is the number of operations the harness settled on.
	Iterations int `json:"iterations"`
}

// BenchFile is the schema of BENCH_<pr>.json: a machine-readable
// perf trajectory point that future PRs diff against. Hardware context is
// recorded so cross-machine comparisons are flagged rather than trusted.
type BenchFile struct {
	PR     int    `json:"pr"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	// Benchmarks maps workload name to its measurement.
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	// Headline pins the figure metrics the paper reproduction is judged
	// by; they are seed-deterministic, so an unexpected diff here means a
	// behaviour change, not noise.
	Headline map[string]float64 `json:"headline"`
}

func toResult(r testing.BenchmarkResult) BenchResult {
	return BenchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// genBench measures the hot-path workloads and headline figure metrics
// and writes them to path as JSON.
func genBench(path string, pr int) error {
	// The round-based workloads measure a FIXED iteration count: the
	// simulation is seed-deterministic, so a fixed window runs the exact
	// same round sequence on every machine, making allocs/op reproducible
	// (the compare gate fails on any allocs increase) and amortising GC
	// and the rare weak-synchrony rounds (5% of rounds allocate above
	// steady state) identically everywhere. Time-based windows would
	// settle on machine-dependent iteration counts and mix rounds
	// differently run to run.
	testing.Init()
	setBenchtime := func(v string) error { return flag.Set("test.benchtime", v) }
	if err := setBenchtime("100x"); err != nil {
		return err
	}
	out := BenchFile{
		PR:         pr,
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Benchmarks: map[string]BenchResult{},
		Headline:   map[string]float64{},
	}

	// One full BA* round, 100 honest nodes — the workload the
	// allocation-lean hot path is optimised for.
	stakes := make([]float64, 100)
	behaviors := make([]protocol.Behavior, 100)
	for i := range stakes {
		stakes[i] = float64(1 + i%50)
		behaviors[i] = protocol.Honest
	}
	runner, err := protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      1,
	})
	if err != nil {
		return err
	}
	// Warm pools, caches, the sortition oracle, and the calendar queue's
	// adaptive geometry before measuring: the steady-state round is the
	// workload the trajectory tracks, and the scheduler/dedup structures
	// finish converging (bucket widths, slab chunks, table sizes) within
	// the first ~10 rounds.
	runner.RunRounds(12)
	fmt.Println("measuring protocol_round_100 ...")
	out.Benchmarks["protocol_round_100"] = toResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runner.RunRounds(1)
		}
	}))

	// One sortition selection, scalar vs cached threshold oracle. These
	// are ~650 ns micro-ops: a time-based window gives them the iteration
	// counts they need for stable ns/op (their allocs are pinned at zero
	// by TestSortitionSelectAllocFree regardless).
	if err := setBenchtime("5s"); err != nil {
		return err
	}
	key := vrf.GenerateKey(sim.NewRNG(1, "benchgen.sortition"))
	p := sortition.Params{
		Seed: [32]byte{1}, Role: sortition.RoleCommittee,
		Tau: 1000, TotalStake: 1e6,
	}
	fmt.Println("measuring sortition_select_direct ...")
	out.Benchmarks["sortition_select_direct"] = toResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Round = uint64(i)
			if _, err := sortition.Select(key.Private, 1_000, p); err != nil {
				b.Fatal(err)
			}
		}
	}))
	fmt.Println("measuring sortition_select_cached ...")
	cache := sortition.NewCache()
	out.Benchmarks["sortition_select_cached"] = toResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Round = uint64(i)
			if _, err := cache.Select(key.Private, 1_000, p); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Fig. 3-class workload: one small defection simulation per
	// iteration, seeds 1..20 — a fixed window, like the round workload.
	if err := setBenchtime("20x"); err != nil {
		return err
	}
	fmt.Println("measuring fig3_small ...")
	fig3 := experiments.DefaultFig3Config()
	fig3.Runs = 1
	fig3.Rounds = 5
	fig3.DefectionRates = []float64{0.15}
	// One run-pool worker: more workers only add goroutine-scheduling
	// allocations that vary run to run, which the zero-tolerance allocs
	// gate cannot distinguish from a regression.
	fig3.Workers = 1
	out.Benchmarks["fig3_small"] = toResult(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fig3.Seed = int64(i + 1)
			if _, err := experiments.RunFig3(fig3); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// One eclipse+equivocation scenario run, 100 nodes: the gate coverage
	// for the adversary engine and the network fault-overlay path. Like
	// the round workload it measures a fixed seeded window, so allocs/op
	// is deterministic; each iteration builds a fresh runner (scenario
	// runs are dominated by faulted rounds, not steady state).
	if err := setBenchtime("10x"); err != nil {
		return err
	}
	fmt.Println("measuring scenario_eclipse_100 ...")
	eclipse, ok := adversary.Lookup(adversary.EclipseEquivocation)
	if !ok {
		// A miss would otherwise surface as b.Fatal inside
		// testing.Benchmark — a silent zero result the compare gate
		// reads as an improvement.
		return fmt.Errorf("scenario %q not registered", adversary.EclipseEquivocation)
	}
	out.Benchmarks["scenario_eclipse_100"] = toResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scnRunner, err := protocol.NewRunner(protocol.Config{
				Params:    protocol.DefaultParams(),
				Stakes:    stakes,
				Behaviors: behaviors,
				Seed:      int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := adversary.Attach(scnRunner, eclipse); err != nil {
				b.Fatal(err)
			}
			scnRunner.RunRounds(10)
		}
	}))

	// Headline figure metrics at the pinned seeds (deterministic).
	fig3.Seed = 1
	res3, err := experiments.RunFig3(fig3)
	if err != nil {
		return err
	}
	out.Headline["fig3_mean_final_d15"] = res3.Series[0].MeanFinal()
	resT, err := experiments.RunTable3()
	if err != nil {
		return err
	}
	out.Headline["table3_per_round_period1"] = resT.Rows[0].PerRound
	res5, err := experiments.RunFig5(experiments.DefaultFig5Config())
	if err != nil {
		return err
	}
	out.Headline["fig5_min_b_grid"] = res5.GridBest.B
	scnCfg := experiments.DefaultScenarioConfig(adversary.EclipseEquivocation)
	scnCfg.Nodes = 60
	scnCfg.Rounds = 8
	scnCfg.Runs = 2
	scnCfg.Workers = 1
	scnRes, err := experiments.RunScenario(scnCfg)
	if err != nil {
		return err
	}
	out.Headline["scenario_eclipse_mean_final"] = scnRes.Audit.MeanFinalFrac

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
