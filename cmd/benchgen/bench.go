package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/obs"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// BenchResult is one measured workload in the persisted benchmark file.
type BenchResult struct {
	// NsPerOp is wall time per operation (one round, one select, …).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from the Go benchmark memstats.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Iterations is the number of operations the harness settled on.
	Iterations int `json:"iterations"`
}

// BenchFile is the schema of BENCH_<pr>.json: a machine-readable
// perf trajectory point that future PRs diff against. Hardware context is
// recorded so cross-machine comparisons are flagged rather than trusted.
type BenchFile struct {
	PR     int    `json:"pr"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	// CPU is the processor model string (from /proc/cpuinfo on Linux;
	// empty when unavailable). goos/goarch/count alone collide across
	// very different machines — every 1-vCPU amd64 cloud runner matches —
	// so the ns/op gate only trusts baselines whose model string matches
	// too; files without one compare as unknown hardware (advisory).
	CPU string `json:"cpu,omitempty"`
	// Benchmarks maps workload name to its measurement.
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	// Headline pins the figure metrics the paper reproduction is judged
	// by; they are seed-deterministic, so an unexpected diff here means a
	// behaviour change, not noise.
	Headline map[string]float64 `json:"headline"`
	// Obs snapshots the telemetry registry's deterministic totals after
	// the obs-overhead workload: the simulation-derived counters (rounds,
	// scheduler events, sortition cache traffic, ...) its fixed window
	// produced. Informational — the compare gate ignores it — but it
	// keeps the metric families and their magnitudes visible in the
	// trajectory. Absent under the obs_off build tag.
	Obs map[string]uint64 `json:"obs,omitempty"`
}

// cpuModel reads the processor model string from /proc/cpuinfo; it
// returns "" on other platforms or when the field is absent.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

func toResult(r testing.BenchmarkResult) BenchResult {
	return BenchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// bestOf measures fn samples times, reporting the MEDIAN allocation
// counts and the minimum ns/op across samples. The split matters:
// allocs/op must stay deterministic for the slack-gated compare, and
// since the whole sample sequence is seed-deterministic (workloads that
// advance a shared runner measure successive round windows in the same
// order every invocation), the median across samples is deterministic
// too — while absorbing a one-sample background-allocation spike (GC
// worker, timer wakeup) that a single-sample read would persist into
// the baseline and flake every later compare against. ns/op on a shared
// or thermally-throttled runner inflates under load, and the minimum
// across samples is the standard low-noise wall-clock estimator the
// ±20% regression gate wants.
func bestOf(samples int, fn func(b *testing.B)) BenchResult {
	results := make([]BenchResult, 0, samples)
	for i := 0; i < samples; i++ {
		results = append(results, toResult(testing.Benchmark(fn)))
	}
	out := results[0]
	allocs := make([]int64, 0, samples)
	bytes := make([]int64, 0, samples)
	for _, r := range results {
		if r.NsPerOp < out.NsPerOp {
			out.NsPerOp = r.NsPerOp
		}
		allocs = append(allocs, r.AllocsPerOp)
		bytes = append(bytes, r.BytesPerOp)
	}
	out.AllocsPerOp = medianInt64(allocs)
	out.BytesPerOp = medianInt64(bytes)
	return out
}

// medianInt64 returns the lower median of vs (sorted copy, element
// (n-1)/2): for the common all-equal case it is that value, and for an
// even sample count it picks a value actually measured rather than an
// average of two windows.
func medianInt64(vs []int64) int64 {
	s := make([]int64, len(vs))
	copy(s, vs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// genBench measures the hot-path workloads and headline figure metrics
// and writes them to path as JSON.
func genBench(path string, pr int) error {
	out, err := measureBench(pr)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// measureBench runs the full measurement pass and returns the bench
// file in memory — the bench target writes it out, the compare
// -selfcheck mode runs it twice and diffs the two results.
func measureBench(pr int) (*BenchFile, error) {
	// The round-based workloads measure a FIXED iteration count: the
	// simulation is seed-deterministic, so a fixed window runs the exact
	// same round sequence on every machine, making allocs/op reproducible
	// (the compare gate fails on any allocs increase) and amortising GC
	// and the rare weak-synchrony rounds (5% of rounds allocate above
	// steady state) identically everywhere. Time-based windows would
	// settle on machine-dependent iteration counts and mix rounds
	// differently run to run.
	testing.Init()
	setBenchtime := func(v string) error { return flag.Set("test.benchtime", v) }
	if err := setBenchtime("100x"); err != nil {
		return nil, err
	}
	out := BenchFile{
		PR:         pr,
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		CPU:        cpuModel(),
		Benchmarks: map[string]BenchResult{},
		Headline:   map[string]float64{},
	}

	// One full BA* round, 100 honest nodes — the workload the
	// allocation-lean hot path is optimised for.
	stakes := make([]float64, 100)
	behaviors := make([]protocol.Behavior, 100)
	for i := range stakes {
		stakes[i] = float64(1 + i%50)
		behaviors[i] = protocol.Honest
	}
	runner, err := protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      1,
	})
	if err != nil {
		return nil, err
	}
	// Warm pools, caches, the sortition oracle, and the calendar queue's
	// adaptive geometry before measuring: the steady-state round is the
	// workload the trajectory tracks, and the scheduler/dedup structures
	// finish converging (bucket widths, slab chunks, table sizes) within
	// the first ~10 rounds.
	runner.RunRounds(12)
	fmt.Println("measuring protocol_round_100 ...")
	out.Benchmarks["protocol_round_100"] = bestOf(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runner.RunRounds(1)
		}
	})

	// One sparse-committee BA* round at 50k nodes: absolute committee taus
	// put the runner on the centralized-sampling path, where per-round cost
	// tracks the committee (a few hundred seats), not the population. A
	// fixed window, like the dense round workload, keeps allocs/op
	// reproducible.
	if err := setBenchtime("20x"); err != nil {
		return nil, err
	}
	sparseStakes := make([]float64, 50_000)
	sparseBehaviors := make([]protocol.Behavior, 50_000)
	for i := range sparseStakes {
		sparseStakes[i] = float64(1 + i%50)
		sparseBehaviors[i] = protocol.Honest
	}
	sparseParams := protocol.DefaultParams()
	sparseParams.TauStep = 200
	sparseParams.TauFinal = 300
	sparseRunner, err := protocol.NewRunner(protocol.Config{
		Params:    sparseParams,
		Stakes:    sparseStakes,
		Behaviors: sparseBehaviors,
		Seed:      1,
		Sparse:    protocol.SparseOn,
	})
	if err != nil {
		return nil, err
	}
	sparseRunner.RunRounds(6)
	fmt.Println("measuring protocol_round_sparse_50k ...")
	out.Benchmarks["protocol_round_sparse_50k"] = bestOf(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sparseRunner.RunRounds(1)
		}
	})

	// One sortition selection, scalar vs cached threshold oracle. These
	// are ~650 ns micro-ops: a time-based window gives them the iteration
	// counts they need for stable ns/op (their allocs are pinned at zero
	// by TestSortitionSelectAllocFree regardless).
	if err := setBenchtime("5s"); err != nil {
		return nil, err
	}
	key := vrf.GenerateKey(sim.NewRNG(1, "benchgen.sortition"))
	p := sortition.Params{
		Seed: [32]byte{1}, Role: sortition.RoleCommittee,
		Tau: 1000, TotalStake: 1e6,
	}
	fmt.Println("measuring sortition_select_direct ...")
	out.Benchmarks["sortition_select_direct"] = toResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Round = uint64(i)
			if _, err := sortition.Select(key.Private, 1_000, p); err != nil {
				b.Fatal(err)
			}
		}
	}))
	fmt.Println("measuring sortition_select_cached ...")
	cache := sortition.NewCache()
	out.Benchmarks["sortition_select_cached"] = toResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Round = uint64(i)
			if _, err := cache.Select(key.Private, 1_000, p); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Fig. 3-class workload: one small defection simulation per
	// iteration, seeds 1..20 — a fixed window, like the round workload.
	if err := setBenchtime("20x"); err != nil {
		return nil, err
	}
	fmt.Println("measuring fig3_small ...")
	fig3 := experiments.DefaultFig3Config()
	fig3.Runs = 1
	fig3.Rounds = 5
	fig3.DefectionRates = []float64{0.15}
	// One run-pool worker: more workers only add goroutine-scheduling
	// allocations that vary run to run, which the zero-tolerance allocs
	// gate cannot distinguish from a regression.
	fig3.Workers = 1
	out.Benchmarks["fig3_small"] = bestOf(3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fig3.Seed = int64(i + 1)
			if _, err := experiments.RunFig3(fig3); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One eclipse+equivocation scenario run, 100 nodes: the gate coverage
	// for the adversary engine and the network fault-overlay path. Like
	// the round workload it measures a fixed seeded window, so allocs/op
	// is deterministic; each iteration builds a fresh runner (scenario
	// runs are dominated by faulted rounds, not steady state).
	if err := setBenchtime("10x"); err != nil {
		return nil, err
	}
	fmt.Println("measuring scenario_eclipse_100 ...")
	eclipse, ok := adversary.Lookup(adversary.EclipseEquivocation)
	if !ok {
		// A miss would otherwise surface as b.Fatal inside
		// testing.Benchmark — a silent zero result the compare gate
		// reads as an improvement.
		return nil, fmt.Errorf("scenario %q not registered", adversary.EclipseEquivocation)
	}
	out.Benchmarks["scenario_eclipse_100"] = bestOf(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scnRunner, err := protocol.NewRunner(protocol.Config{
				Params:    protocol.DefaultParams(),
				Stakes:    stakes,
				Behaviors: behaviors,
				Seed:      int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := adversary.Attach(scnRunner, eclipse); err != nil {
				b.Fatal(err)
			}
			scnRunner.RunRounds(10)
		}
	})

	// 500-node crash-churn scenario: the resync-heavy workload behind the
	// -full grid. Crash churn keeps a third of the network cycling
	// offline, so every round pays many catch-up clones — the cost the
	// copy-on-write ledger views bound at O(pages touched) per resync.
	// Fixed seeded window, arena reuse across iterations, like the grid.
	if err := setBenchtime("3x"); err != nil {
		return nil, err
	}
	churn, ok := adversary.Lookup("crash_churn")
	if !ok {
		return nil, fmt.Errorf("scenario %q not registered", "crash_churn")
	}
	churnStakes := make([]float64, 500)
	churnBehaviors := make([]protocol.Behavior, 500)
	for i := range churnStakes {
		churnStakes[i] = float64(1 + i%50)
		churnBehaviors[i] = protocol.Honest
	}
	churnBench := func(arena *protocol.Arena) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := protocol.NewRunner(protocol.Config{
					Params:    protocol.DefaultParams(),
					Stakes:    churnStakes,
					Behaviors: churnBehaviors,
					Seed:      int64(i + 1),
					Arena:     arena,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := adversary.Attach(r, churn); err != nil {
					b.Fatal(err)
				}
				r.RunRounds(6)
			}
		}
	}
	fmt.Println("measuring crash_churn_500 ...")
	out.Benchmarks["crash_churn_500"] = bestOf(2, churnBench(protocol.NewArena()))
	// The same workload on the deep-clone oracle path documents the COW
	// win in the persisted trajectory (it is informational, not gated:
	// its whole point is being slower).
	fmt.Println("measuring crash_churn_500_deepclone ...")
	prevClone := ledger.SetDeepCloneViews(true)
	out.Benchmarks["crash_churn_500_deepclone"] = toResult(testing.Benchmark(churnBench(protocol.NewArena())))
	ledger.SetDeepCloneViews(prevClone)

	// Isolated resync micro-op: one CloneView plus a single-account write
	// on a 4096-account chain — the exact operation a desynchronised node
	// pays per catch-up, without the surrounding gossip traffic. The
	// deep-clone companion shows the removed O(accounts) copy directly.
	if err := setBenchtime("5s"); err != nil {
		return nil, err
	}
	resyncSrc := func() *ledger.Ledger {
		stakes := make([]float64, 4096)
		for i := range stakes {
			stakes[i] = float64(1 + i%50)
		}
		l := ledger.Genesis(stakes, sim.NewRNG(1, "benchgen.resync"))
		for r := uint64(1); r <= 8; r++ {
			if err := l.Append(ledger.EmptyBlock(r, l.Tip(), ledger.NextSeed(l.Seed(), r))); err != nil {
				panic(err)
			}
		}
		return l
	}()
	resyncBench := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := resyncSrc.CloneView()
			if err := v.Credit(i%4096, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	fmt.Println("measuring ledger_resync_4096 ...")
	out.Benchmarks["ledger_resync_4096"] = toResult(testing.Benchmark(resyncBench))
	fmt.Println("measuring ledger_resync_4096_deepclone ...")
	prevClone = ledger.SetDeepCloneViews(true)
	out.Benchmarks["ledger_resync_4096_deepclone"] = toResult(testing.Benchmark(resyncBench))
	ledger.SetDeepCloneViews(prevClone)

	// Per-round weight refresh on a 4096-account ledger: 16 scattered
	// credits (a busy round's reward mutations) followed by the runner's
	// refresh — WeightsInto plus TotalWeight. On the indexed backend the
	// StakeObserver already folded the credits in, so the refresh is a
	// dense copy and an O(1) total read; the _direct companion re-walks
	// the account pages every round and is informational (it measures
	// the default path, gated via protocol_round_100, not here). Fixed
	// windows keep allocs/op deterministic, like the round workload.
	if err := setBenchtime("1000x"); err != nil {
		return nil, err
	}
	refreshBench := func(backend weight.Backend) func(b *testing.B) {
		stakes := make([]float64, 4096)
		for i := range stakes {
			stakes[i] = float64(1 + i%50)
		}
		l := ledger.Genesis(stakes, sim.NewRNG(1, "benchgen.weight"))
		oracle, err := weight.ForLedger(l, backend)
		if err != nil {
			panic(err)
		}
		rng := sim.NewRNG(1, "benchgen.weight.credits")
		buf := make([]float64, 0, 4096)
		return func(b *testing.B) {
			b.ReportAllocs()
			var total float64
			for i := 0; i < b.N; i++ {
				for k := 0; k < 16; k++ {
					if err := l.Credit(rng.Intn(4096), 1); err != nil {
						b.Fatal(err)
					}
				}
				buf = oracle.WeightsInto(uint64(i), buf)
				total = oracle.TotalWeight(uint64(i))
			}
			if total <= 0 {
				b.Fatal("weight refresh lost the total")
			}
		}
	}
	fmt.Println("measuring weight_oracle_refresh ...")
	out.Benchmarks["weight_oracle_refresh"] = bestOf(3, refreshBench(weight.BackendIndexed))
	fmt.Println("measuring weight_oracle_refresh_direct ...")
	out.Benchmarks["weight_oracle_refresh_direct"] = bestOf(3, refreshBench(weight.BackendLedgerDirect))

	// Streamed -full grid through the memory-bounded summary fold: the
	// sink stack's end-to-end cost on a reduced 2x2 grid. The
	// _materialize companion replays the same grid through the legacy
	// buffer-everything path and is informational only — its allocs grow
	// O(cells x rows) by design, which is the overhead the streaming
	// fold removes. Fixed seeded windows, one worker, like the grid
	// headline.
	if err := setBenchtime("3x"); err != nil {
		return nil, err
	}
	streamCfg := experiments.FullScenarioGridConfig()
	streamCfg.Scenarios = []string{adversary.HonestBaseline, "crash_churn"}
	streamCfg.Seeds = []int64{1, 2}
	streamCfg.Nodes = 60
	streamCfg.Rounds = 6
	streamCfg.Workers = 1
	streamBench := func(drive func(experiments.ScenarioGridConfig, experiments.Sink, experiments.StreamOptions) error) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink := experiments.NewSummarySink(0)
				if err := drive(streamCfg, sink, experiments.StreamOptions{}); err != nil {
					b.Fatal(err)
				}
				if _, err := sink.Table(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	fmt.Println("measuring grid_stream_summary ...")
	out.Benchmarks["grid_stream_summary"] = bestOf(2, streamBench(experiments.StreamScenarioGrid))
	fmt.Println("measuring grid_stream_summary_materialize ...")
	out.Benchmarks["grid_stream_summary_materialize"] = toResult(testing.Benchmark(streamBench(experiments.MaterializeScenarioGrid)))

	// Headline figure metrics at the pinned seeds (deterministic).
	fig3.Seed = 1
	res3, err := experiments.RunFig3(fig3)
	if err != nil {
		return nil, err
	}
	out.Headline["fig3_mean_final_d15"] = res3.Series[0].MeanFinal()
	resT, err := experiments.RunTable3()
	if err != nil {
		return nil, err
	}
	out.Headline["table3_per_round_period1"] = resT.Rows[0].PerRound
	res5, err := experiments.RunFig5(experiments.DefaultFig5Config())
	if err != nil {
		return nil, err
	}
	out.Headline["fig5_min_b_grid"] = res5.GridBest.B
	scnCfg := experiments.DefaultScenarioConfig(adversary.EclipseEquivocation)
	scnCfg.Nodes = 60
	scnCfg.Rounds = 8
	scnCfg.Runs = 2
	scnCfg.Workers = 1
	scnRes, err := experiments.RunScenario(scnCfg)
	if err != nil {
		return nil, err
	}
	out.Headline["scenario_eclipse_mean_final"] = scnRes.Audit.MeanFinalFrac
	// A reduced scenario×seed grid pins the -full path's determinism:
	// the mean final fraction across cells is seed-exact.
	gridCfg := experiments.FullScenarioGridConfig()
	gridCfg.Scenarios = []string{adversary.HonestBaseline, "crash_churn"}
	gridCfg.Seeds = []int64{1, 2}
	gridCfg.Nodes = 60
	gridCfg.Rounds = 6
	gridCfg.Workers = 1
	gridRes, err := experiments.RunScenarioGrid(gridCfg)
	if err != nil {
		return nil, err
	}
	gridFinal := 0.0
	for _, cell := range gridRes.Cells {
		gridFinal += cell.Audit.MeanFinalFrac
	}
	out.Headline["full_grid_mean_final"] = gridFinal / float64(len(gridRes.Cells))
	// The streamed counterpart pins the sink stack end to end: the p50 of
	// the per-round final fraction from the merged quantile sketches must
	// reproduce bit-for-bit at any worker count or shard split.
	streamSink := experiments.NewSummarySink(0)
	if err := experiments.StreamScenarioGrid(streamCfg, streamSink, experiments.StreamOptions{}); err != nil {
		return nil, err
	}
	streamTable, err := streamSink.Table()
	if err != nil {
		return nil, err
	}
	for _, col := range streamTable.Columns {
		if col.Name == "p50" {
			out.Headline["full_grid_stream_p50_final"] = col.Values[0]
		}
	}

	// Telemetry-overhead companion: the identical 100-node round with the
	// metrics registry enabled (a runner built after obs.Enable flushes
	// per-round counter deltas into it). Informational, not gated — its
	// job is keeping the registry's cost visible in the trajectory, where
	// the contract is <2% ns/op over protocol_round_100 and zero extra
	// allocs/op. It runs LAST: enabling the registry leaves a live
	// heap (registry + warmed runner) behind, which shifts GC pacing
	// enough to perturb the gated fixed-window alloc counts by a few
	// tens per op if any of them measure after it. Under the obs_off
	// build tag Enable is a no-op and the workload (plus the Obs
	// snapshot) is skipped.
	if err := setBenchtime("100x"); err != nil {
		return nil, err
	}
	preEnabled := obs.Default() != nil
	if reg := obs.Enable(); reg != nil {
		obsRunner, err := protocol.NewRunner(protocol.Config{
			Params:    protocol.DefaultParams(),
			Stakes:    stakes,
			Behaviors: behaviors,
			Seed:      1,
		})
		if err != nil {
			return nil, err
		}
		obsRunner.RunRounds(12)
		fmt.Println("measuring protocol_round_100_obs ...")
		out.Benchmarks["protocol_round_100_obs"] = bestOf(3, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				obsRunner.RunRounds(1)
			}
		})
		out.Obs = reg.DeterministicTotals()
		if !preEnabled {
			obs.Disable() // leave a -metricsAddr session's registry alone
		}
	}

	return &out, nil
}
