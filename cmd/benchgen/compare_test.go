package main

import (
	"strings"
	"testing"
)

func TestAllocSlackWidensOffKnownHardware(t *testing.T) {
	for _, tc := range []struct {
		base int64
		same bool
		want int64
	}{
		{base: 0, same: true, want: 4},
		{base: 100_000, same: true, want: 100},
		{base: 0, same: false, want: 64},
		{base: 100_000, same: false, want: 1000},
	} {
		if got := allocSlack(tc.base, tc.same); got != tc.want {
			t.Errorf("allocSlack(%d, %v) = %d, want %d", tc.base, tc.same, got, tc.want)
		}
	}
}

func TestMedianInt64(t *testing.T) {
	for _, tc := range []struct {
		vs   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{7, 7, 7}, 7},
		{[]int64{9, 1, 5}, 5},
		// Lower median on even counts: a measured value, not an average.
		{[]int64{1, 9}, 1},
		// A single background-allocation spike must not move the median.
		{[]int64{100, 100, 4000}, 100},
	} {
		if got := medianInt64(tc.vs); got != tc.want {
			t.Errorf("medianInt64(%v) = %d, want %d", tc.vs, got, tc.want)
		}
	}
}

func benchFixture(allocs int64, ns float64) *BenchFile {
	f := &BenchFile{
		GoOS: "linux", GoArch: "amd64", NumCPU: 8, CPU: "TestCPU v1",
		Benchmarks: map[string]BenchResult{},
		Headline:   map[string]float64{"fig3_mean_final_d15": 0.5},
	}
	for _, g := range gatedWorkloads {
		f.Benchmarks[g.key] = BenchResult{NsPerOp: ns, AllocsPerOp: allocs}
	}
	return f
}

// TestGateDiffAllocSlackByHardware pins the satellite fix: a +40/op
// allocs drift trips the tight same-hardware gate but is absorbed by
// the widened slack when the baseline hardware is unknown.
func TestGateDiffAllocSlackByHardware(t *testing.T) {
	base := benchFixture(1000, 100)
	cand := benchFixture(1040, 100)
	if findings := gateDiff(base, cand, true); len(findings) == 0 {
		t.Fatal("same-hardware gate missed a +40 allocs/op drift beyond the tight slack")
	}
	if findings := gateDiff(base, cand, false); len(findings) != 0 {
		t.Fatalf("unknown-hardware gate should absorb +40 allocs/op, got %v", findings)
	}
	// A real per-iteration leak (+100/op per the fixed 100x windows)
	// still trips even the widened gate.
	leak := benchFixture(10_000, 100)
	if findings := gateDiff(base, leak, false); len(findings) == 0 {
		t.Fatal("unknown-hardware gate missed a real allocation leak")
	}
}

// TestGateDiffNsGateNeedsSameHardware pins that wall-clock regressions
// only fail on proven-identical hardware, while headline diffs always
// fail.
func TestGateDiffNsGateNeedsSameHardware(t *testing.T) {
	base := benchFixture(1000, 100)
	slow := benchFixture(1000, 200)
	if findings := gateDiff(base, slow, true); len(findings) == 0 {
		t.Fatal("same-hardware gate missed a 2x ns/op regression")
	}
	if findings := gateDiff(base, slow, false); len(findings) != 0 {
		t.Fatalf("cross-hardware ns/op must be advisory, got %v", findings)
	}
	drift := benchFixture(1000, 100)
	drift.Headline["fig3_mean_final_d15"] = 0.75
	findings := gateDiff(base, drift, false)
	if len(findings) != 1 || !strings.Contains(findings[0], "headline") {
		t.Fatalf("headline diff must fail on any hardware, got %v", findings)
	}
}
