package main

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	out := t.TempDir()
	for name, args := range map[string][]string{
		"unknown flag":     {"-no-such-flag"},
		"unknown target":   {"-out", out, "fig99"},
		"bench needs pr":   {"-out", out, "bench"},
		"compare no files": {"-out", out, "-candidate", filepath.Join(out, "missing.json"), "compare"},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(args, &stdout, &stderr); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

// TestRunFig3LargeSmoke exercises the sparse large-population target at a
// CI-smoke scale: above the auto threshold, trimmed to one run and a few
// rounds.
func TestRunFig3LargeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := t.TempDir()
	var stdout, stderr bytes.Buffer
	args := []string{
		"-out", out,
		"-largeNodes", "5000", "-largeRounds", "2", "-largeRuns", "1",
		"fig3large",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if m, _ := filepath.Glob(filepath.Join(out, "fig3large_5000.csv")); len(m) != 1 {
		t.Fatalf("missing fig3large_5000.csv; stdout:\n%s", stdout.String())
	}
}
