package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The compare target is the CI benchmark-regression gate: it diffs a
// freshly measured BENCH file (the candidate) against the newest
// checked-in trajectory file (the baseline) and fails when a gated
// workload regressed. See README "Benchmark pipeline".
//
// Gate rules:
//
//   - ns/op may not regress by more than maxNsRegression on the gated
//     workloads (protocol_round_100 ↔ BenchmarkProtocolRound, fig3_small
//     ↔ BenchmarkFig3) — enforced only when baseline and candidate
//     provably ran on the same hardware (goos/goarch/cpu count AND a
//     matching, non-empty cpu model string), advisory otherwise: wall
//     time on a different machine says nothing about the code;
//   - allocs/op may not regress beyond a small absolute slack on gated
//     workloads — the gated workloads measure a fixed, seeded iteration
//     window (see genBench), so the simulation's own allocation sequence
//     is deterministic; the runtime still contributes a few background
//     allocations per window (GC workers, timer wakeups), measured at
//     ±3/op on identical binaries, which the slack absorbs. Any real
//     per-call regression adds at least one alloc per iteration (+100/op
//     on the 100x windows) and still trips the gate. The tight slack is
//     only honest on proven-identical hardware: a different Go runtime
//     build, core count, or GC pacing regime shifts the background
//     allocation rate by tens per window, so against a baseline whose
//     CPU model is unknown or differs the slack widens (see allocSlack).
//     A Go toolchain bump can shift runtime allocations past even the
//     wide slack: regenerate the baseline in that case;
//   - headline figure metrics must match the baseline bit-for-bit: they
//     are seed-pinned, so a diff is a behaviour change that must go
//     through the golden-figure update flow instead.

// maxNsRegression is the tolerated fractional ns/op increase on gated
// workloads (noise margin for shared CI runners).
const maxNsRegression = 0.20

// allocSlack returns the tolerated allocs/op increase for a baseline
// value. On proven-identical hardware (matching, non-empty CPU model):
// the greater of 4 allocations and 0.1%, covering the runtime's
// background-allocation jitter without masking per-iteration leaks.
// Against an unknown or different machine the background rate itself is
// unknown — a different core count or GC pacing regime moves it by tens
// per fixed window — so the slack widens to the greater of 64 and 1%,
// which still catches any real per-iteration leak (+100/op on the 100x
// windows) without flaking on runner lottery.
func allocSlack(base int64, sameHardware bool) int64 {
	if sameHardware {
		if s := base / 1000; s > 4 {
			return s
		}
		return 4
	}
	if s := base / 100; s > 64 {
		return s
	}
	return 64
}

// gatedWorkloads maps persisted workload keys to the benchmark names
// developers know them by.
var gatedWorkloads = []struct{ key, bench string }{
	{"protocol_round_100", "BenchmarkProtocolRound"},
	{"fig3_small", "BenchmarkFig3"},
	// The adversary-engine + fault-overlay path; absent from baselines
	// older than PR 4, where the gate reports it skipped.
	{"scenario_eclipse_100", "cmd/scenario eclipse_equivocation"},
	// The resync-heavy -full grid workload on COW ledger views; absent
	// from baselines older than PR 5. Its _deepclone companion is
	// informational only (it measures the oracle path, which is slower
	// by design) and deliberately not gated.
	{"crash_churn_500", "cmd/scenario crash_churn -fullNodes 500"},
	// The isolated per-desync catch-up cost (clone + one write); pinned
	// so resync never silently regresses to O(accounts) again.
	{"ledger_resync_4096", "ledger.CloneView + Credit"},
	// The incremental weight index's per-round refresh (16 credits +
	// WeightsInto + TotalWeight on 4096 accounts); absent from baselines
	// older than PR 6. Its _direct companion measures the page-walking
	// default and is informational, not gated.
	{"weight_oracle_refresh", "weight.Index refresh, 4096 accounts"},
	// One sparse-committee round at 50k nodes — the O(committee) hot path
	// that carries the 500k fig3 sweep; absent from baselines older than
	// PR 7.
	{"protocol_round_sparse_50k", "50k-node sparse BA* round"},
	// The streamed -full grid through the summary-fold sink; absent from
	// baselines older than PR 8. Its _materialize companion measures the
	// legacy buffer-everything path and is informational, not gated.
	{"grid_stream_summary", "StreamScenarioGrid + SummarySink, 2x2 grid"},
}

func loadBench(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// latestBenchFile finds the highest-numbered BENCH_<n>.json in dir,
// excluding the candidate path itself.
func latestBenchFile(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	sort.Strings(matches)
	best, bestPR := "", -1
	excludeAbs, _ := filepath.Abs(exclude)
	for _, m := range matches {
		abs, _ := filepath.Abs(m)
		if exclude != "" && abs == excludeAbs {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		pr, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		if pr > bestPR {
			best, bestPR = m, pr
		}
	}
	if best == "" {
		return "", fmt.Errorf("no baseline BENCH_<n>.json found in %q", dir)
	}
	return best, nil
}

// runCompare enforces the benchmark-regression gate. It returns an error
// (failing the CI job) when any gate trips.
func runCompare(baselinePath, candidatePath string) error {
	if candidatePath == "" {
		return fmt.Errorf("compare: -candidate FILE is required (the freshly generated bench JSON)")
	}
	if baselinePath == "" {
		var err error
		baselinePath, err = latestBenchFile(".", candidatePath)
		if err != nil {
			return err
		}
	}
	base, err := loadBench(baselinePath)
	if err != nil {
		return err
	}
	cand, err := loadBench(candidatePath)
	if err != nil {
		return err
	}
	fmt.Printf("baseline:  %s (PR %d, %s/%s, %d cpu, %q)\n", baselinePath, base.PR, base.GoOS, base.GoArch, base.NumCPU, base.CPU)
	fmt.Printf("candidate: %s (PR %d, %s/%s, %d cpu, %q)\n\n", candidatePath, cand.PR, cand.GoOS, cand.GoArch, cand.NumCPU, cand.CPU)
	// The ns/op gate only fires on provably identical hardware. The
	// goos/goarch/count triple is not enough — every 1-vCPU amd64 cloud
	// runner matches every other — so the processor model string must
	// match too, and files that never recorded one (pre-PR 6 baselines,
	// or platforms without /proc/cpuinfo) compare as unknown hardware.
	sameHardware := base.GoOS == cand.GoOS && base.GoArch == cand.GoArch &&
		base.NumCPU == cand.NumCPU && base.CPU == cand.CPU && base.CPU != ""
	if !sameHardware {
		fmt.Println("warning: baseline and candidate hardware differ or cannot be proven identical; the ns/op gate is advisory and the allocs slack widens here (headline gate still applies in full)")
	}

	failures := gateDiff(base, cand, sameHardware)

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Printf("FAIL: %s\n", f)
		}
		return fmt.Errorf("benchmark regression gate failed (%d finding(s))", len(failures))
	}
	fmt.Println("\nbenchmark regression gate passed")
	return nil
}

// gateDiff applies every gate rule to a baseline/candidate pair and
// returns the findings (empty = gate passes). Shared by the compare
// target and the -selfcheck mode, which feeds it two measurements of
// the same build.
func gateDiff(base, cand *BenchFile, sameHardware bool) []string {
	var failures []string
	fmt.Printf("%-22s %14s %14s %8s %12s %12s\n", "workload", "base ns/op", "cand ns/op", "Δns", "base allocs", "cand allocs")
	for _, g := range gatedWorkloads {
		b, okB := base.Benchmarks[g.key]
		c, okC := cand.Benchmarks[g.key]
		if !okB {
			fmt.Printf("%-22s missing from baseline — skipped\n", g.key)
			continue
		}
		if !okC {
			failures = append(failures, fmt.Sprintf("%s (%s): missing from candidate", g.key, g.bench))
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		fmt.Printf("%-22s %14.0f %14.0f %+7.1f%% %12d %12d\n",
			g.key, b.NsPerOp, c.NsPerOp, delta*100, b.AllocsPerOp, c.AllocsPerOp)
		if delta > maxNsRegression {
			if sameHardware {
				failures = append(failures, fmt.Sprintf("%s (%s): ns/op regressed %.1f%% (limit %.0f%%)",
					g.key, g.bench, delta*100, maxNsRegression*100))
			} else {
				fmt.Printf("warning: %s ns/op +%.1f%% vs baseline, not gated across differing hardware\n", g.key, delta*100)
			}
		}
		if slack := allocSlack(b.AllocsPerOp, sameHardware); c.AllocsPerOp > b.AllocsPerOp+slack {
			failures = append(failures, fmt.Sprintf("%s (%s): allocs/op regressed %d -> %d (slack %d)",
				g.key, g.bench, b.AllocsPerOp, c.AllocsPerOp, slack))
		}
	}

	// Informational: telemetry overhead within the candidate itself —
	// protocol_round_100 runs with the registry disabled (nil hooks),
	// its _obs companion with the registry enabled. The target is <2%
	// ns/op and 0 extra allocs/op; printed, not gated, because ns/op on
	// a shared runner is too noisy to fail a build over 2%. The alloc
	// side IS gated, by protocol's TestRoundAllocBudgetWithMetrics.
	if off, okOff := cand.Benchmarks["protocol_round_100"]; okOff {
		if on, okOn := cand.Benchmarks["protocol_round_100_obs"]; okOn {
			fmt.Printf("\nobs_overhead (informational): round ns/op %+.1f%% with registry enabled, allocs/op %+d (target <2%%, +0)\n",
				(on.NsPerOp-off.NsPerOp)/off.NsPerOp*100, on.AllocsPerOp-off.AllocsPerOp)
		}
	}

	fmt.Println()
	names := make([]string, 0, len(base.Headline))
	for name := range base.Headline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Headline[name]
		got, ok := cand.Headline[name]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("headline %s: missing from candidate", name))
		case got != want:
			failures = append(failures, fmt.Sprintf("headline %s: %v != baseline %v (seed-pinned metrics must match exactly)", name, got, want))
		default:
			fmt.Printf("headline %-28s %v  ok\n", name, got)
		}
	}
	return failures
}

// runSelfCheck is the gate-configuration validator behind
// `compare -selfcheck`: it measures the current build twice in-process
// and applies the full gate rules between the two runs. The build is
// identical by construction, so any finding means the tolerances
// (allocSlack, maxNsRegression) are too tight to absorb this runner's
// run-to-run jitter — a gate-configuration failure, not a build
// regression — and the error message says so. CI runs this before
// trusting a red compare verdict.
func runSelfCheck(pr int) error {
	fmt.Println("selfcheck: measuring the current build twice in-process ...")
	first, err := measureBench(pr)
	if err != nil {
		return fmt.Errorf("selfcheck first measurement: %w", err)
	}
	fmt.Println("\nselfcheck: second measurement ...")
	second, err := measureBench(pr)
	if err != nil {
		return fmt.Errorf("selfcheck second measurement: %w", err)
	}
	// Same process, same binary: the hardware is identical by
	// construction, so the tight same-hardware slack applies — that is
	// the configuration being validated.
	findings := gateDiff(first, second, true)
	if len(findings) > 0 {
		fmt.Println()
		for _, f := range findings {
			fmt.Printf("SELFCHECK: %s\n", f)
		}
		return fmt.Errorf("compare -selfcheck: two measurements of the same build disagree under the gate rules (%d finding(s)) — the gate configuration is too tight for this runner, not a build regression; widen the slack or loosen maxNsRegression before trusting a red compare", len(findings))
	}
	fmt.Println("\nselfcheck passed: gate tolerances absorb this runner's run-to-run jitter")
	return nil
}
