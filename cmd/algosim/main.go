// Command algosim runs the Algorand BA* protocol simulator: a gossip
// network of honest, selfish (defecting), malicious and faulty nodes
// attempting to finalise blocks round after round. It prints a per-round
// outcome table (the data behind the paper's Fig. 3) and a summary.
//
// With -runs > 1 it averages the per-round outcome fractions over
// independent simulations fanned out across the shared deterministic run
// pool; -workers caps the pool (0 = GOMAXPROCS) without changing any
// output.
//
// -sparse selects the protocol round path: "auto" (default) switches to
// the centralized sparse-committee sampler for populations of 4096+
// nodes when the committee taus are absolute, "on" forces it, "off"
// forces the dense per-node sweep. -tauStep/-tauFinal override the
// committee sizes; values > 1 are absolute seat counts (required for
// sparse runs), values in (0, 1] are fractions of total stake.
//
// -weightBackend selects the ledger-backed weight oracle sortition
// reads; -weights replaces ledger weights with a synthetic per-run
// profile (e.g. "zipf:1.3:40"). Both match cmd/scenario's flags; see
// internal/weight.
//
// Usage:
//
//	algosim [-nodes N] [-rounds R] [-runs M] [-workers W]
//	        [-defect F] [-malicious F] [-faulty F]
//	        [-fanout K] [-loss P] [-seed S] [-csv]
//	        [-weightBackend direct|indexed] [-weights SPEC]
//	        [-sparse auto|on|off] [-tauStep T] [-tauFinal T]
//	        [-metricsAddr HOST:PORT] [-trace FILE]
//
// -metricsAddr serves the live telemetry registry (/metrics in
// Prometheus text format, /debug/vars, /debug/pprof) for the duration
// of the run; -trace records a Chrome-trace timeline of run 0. Both
// are observation-only: every output stays byte-identical with them
// on, off, or scraped mid-run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/dsn2020-algorand/incentives/internal/cliutil"
	"github.com/dsn2020-algorand/incentives/internal/network"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "algosim:", err)
		}
		os.Exit(1)
	}
}

// simRun is one simulation's per-round outcome fractions plus the
// headline counters of its final state.
type simRun struct {
	final, tentative, none []float64
	decidedRounds          int
	chainHeight            int
	netStats               network.Stats
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("algosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes       = fs.Int("nodes", 100, "network size")
		rounds      = fs.Int("rounds", 30, "rounds to simulate")
		runs        = fs.Int("runs", 1, "independent simulations to average")
		workers     = cliutil.Workers(fs)
		defect      = fs.Float64("defect", 0.10, "fraction of honest-but-selfish nodes that defect")
		malicious   = fs.Float64("malicious", 0, "fraction of malicious nodes")
		faulty      = fs.Float64("faulty", 0, "fraction of faulty (offline) nodes")
		fanout      = fs.Int("fanout", 5, "gossip fan-out")
		loss        = fs.Float64("loss", protocol.DefaultLossProb, "per-hop gossip loss probability")
		seed        = cliutil.Seed(fs, 1, "random seed")
		asCSV       = fs.Bool("csv", false, "emit CSV instead of a text table")
		weights     = cliutil.Weights(fs)
		sparseFlags = cliutil.Sparse(fs)
		obsFlags    = cliutil.Obs(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.NoArgs(fs); err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(stderr); cerr != nil && err == nil {
			err = cerr
		}
	}()
	backend, profile, err := weights.Resolve()
	if err != nil {
		return err
	}
	sparse, params, err := sparseFlags.Resolve()
	if err != nil {
		return err
	}
	if *defect+*malicious+*faulty > 1 {
		return fmt.Errorf("behaviour fractions sum to %v > 1", *defect+*malicious+*faulty)
	}
	if *runs < 1 {
		return fmt.Errorf("need at least one run, got %d", *runs)
	}

	results, err := runpool.Sweep(*runs, *workers, func(run int) (simRun, error) {
		// Run 0 uses the -seed value itself, so -runs 1 reproduces the
		// historical single-run output exactly.
		runSeed := *seed + int64(run)*7919
		rng := sim.NewRNG(runSeed, "algosim")
		pop, err := stake.SamplePopulation(stake.UniformInt{A: 1, B: 50}, *nodes, rng)
		if err != nil {
			return simRun{}, err
		}
		behaviors := make([]protocol.Behavior, *nodes)
		for i := range behaviors {
			behaviors[i] = protocol.Honest
		}
		perm := rng.Perm(*nodes)
		idx := 0
		assign := func(frac float64, b protocol.Behavior) {
			for n := 0; n < int(frac*float64(*nodes)) && idx < *nodes; n++ {
				behaviors[perm[idx]] = b
				idx++
			}
		}
		assign(*defect, protocol.Selfish)
		assign(*malicious, protocol.Malicious)
		assign(*faulty, protocol.Faulty)

		pcfg := protocol.Config{
			Params:        params,
			Stakes:        pop.Stakes,
			Behaviors:     behaviors,
			Fanout:        *fanout,
			LossProb:      *loss,
			Seed:          runSeed,
			Sparse:        sparse,
			WeightBackend: backend,
		}
		if run == 0 {
			pcfg.Trace = sess.Trace() // single-writer: run 0 only
		}
		if profile != nil {
			pcfg.Weights = profile(*nodes, runSeed)
		}
		runner, err := protocol.NewRunner(pcfg)
		if err != nil {
			return simRun{}, err
		}

		reports := runner.RunRounds(*rounds)
		out := simRun{
			final:       make([]float64, len(reports)),
			tentative:   make([]float64, len(reports)),
			none:        make([]float64, len(reports)),
			chainHeight: runner.Canonical().Len(),
			netStats:    runner.Network().Stats(),
		}
		for i, rep := range reports {
			out.final[i] = rep.FinalFrac()
			out.tentative[i] = rep.TentativeFrac()
			out.none[i] = rep.NoneFrac()
			if rep.Decided {
				out.decidedRounds++
			}
		}
		return out, nil
	})
	if err != nil {
		return err
	}

	pick := func(field func(simRun) []float64) [][]float64 {
		rows := make([][]float64, len(results))
		for i, r := range results {
			rows[i] = field(r)
		}
		return rows
	}
	finalCol, err := runpool.MeanColumns(pick(func(r simRun) []float64 { return r.final }))
	if err != nil {
		return err
	}
	tentCol, err := runpool.MeanColumns(pick(func(r simRun) []float64 { return r.tentative }))
	if err != nil {
		return err
	}
	noneCol, err := runpool.MeanColumns(pick(func(r simRun) []float64 { return r.none }))
	if err != nil {
		return err
	}
	roundCol := make([]float64, *rounds)
	for i := range roundCol {
		roundCol[i] = float64(i + 1)
	}
	table := stats.NewTable(
		stats.Series{Name: "round", Values: roundCol},
		stats.Series{Name: "final", Values: finalCol},
		stats.Series{Name: "tentative", Values: tentCol},
		stats.Series{Name: "none", Values: noneCol},
	)
	if *asCSV {
		if err := table.WriteCSV(stdout); err != nil {
			return err
		}
	} else {
		if err := table.WriteText(stdout); err != nil {
			return err
		}
	}

	meanFinal, _ := stats.Mean(finalCol)
	meanDecided := runpool.MeanOf(results, func(r simRun) float64 { return float64(r.decidedRounds) })
	meanHeight := runpool.MeanOf(results, func(r simRun) float64 { return float64(r.chainHeight) })
	if *runs == 1 {
		fmt.Fprintf(stderr,
			"\n%d/%d rounds decided; mean final fraction %.1f%%; chain height %d; gossip: %+v\n",
			results[0].decidedRounds, *rounds, 100*meanFinal, results[0].chainHeight, results[0].netStats)
	} else {
		fmt.Fprintf(stderr,
			"\n%d runs: mean %.1f/%d rounds decided; mean final fraction %.1f%%; mean chain height %.1f\n",
			*runs, meanDecided, *rounds, 100*meanFinal, meanHeight)
	}
	return nil
}
