// Command algosim runs the Algorand BA* protocol simulator: a gossip
// network of honest, selfish (defecting), malicious and faulty nodes
// attempting to finalise blocks round after round. It prints a per-round
// outcome table (the data behind the paper's Fig. 3) and a summary.
//
// Usage:
//
//	algosim [-nodes N] [-rounds R] [-defect F] [-malicious F] [-faulty F]
//	        [-fanout K] [-loss P] [-seed S] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		nodes     = flag.Int("nodes", 100, "network size")
		rounds    = flag.Int("rounds", 30, "rounds to simulate")
		defect    = flag.Float64("defect", 0.10, "fraction of honest-but-selfish nodes that defect")
		malicious = flag.Float64("malicious", 0, "fraction of malicious nodes")
		faulty    = flag.Float64("faulty", 0, "fraction of faulty (offline) nodes")
		fanout    = flag.Int("fanout", 5, "gossip fan-out")
		loss      = flag.Float64("loss", protocol.DefaultLossProb, "per-hop gossip loss probability")
		seed      = flag.Int64("seed", 1, "random seed")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of a text table")
	)
	flag.Parse()
	if *defect+*malicious+*faulty > 1 {
		return fmt.Errorf("behaviour fractions sum to %v > 1", *defect+*malicious+*faulty)
	}

	rng := sim.NewRNG(*seed, "algosim")
	pop, err := stake.SamplePopulation(stake.UniformInt{A: 1, B: 50}, *nodes, rng)
	if err != nil {
		return err
	}
	behaviors := make([]protocol.Behavior, *nodes)
	for i := range behaviors {
		behaviors[i] = protocol.Honest
	}
	perm := rng.Perm(*nodes)
	idx := 0
	assign := func(frac float64, b protocol.Behavior) {
		for n := 0; n < int(frac*float64(*nodes)) && idx < *nodes; n++ {
			behaviors[perm[idx]] = b
			idx++
		}
	}
	assign(*defect, protocol.Selfish)
	assign(*malicious, protocol.Malicious)
	assign(*faulty, protocol.Faulty)

	runner, err := protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    pop.Stakes,
		Behaviors: behaviors,
		Fanout:    *fanout,
		LossProb:  *loss,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}

	reports := runner.RunRounds(*rounds)
	roundCol := make([]float64, len(reports))
	finalCol := make([]float64, len(reports))
	tentCol := make([]float64, len(reports))
	noneCol := make([]float64, len(reports))
	decidedRounds := 0
	for i, rep := range reports {
		roundCol[i] = float64(i + 1)
		finalCol[i] = rep.FinalFrac()
		tentCol[i] = rep.TentativeFrac()
		noneCol[i] = rep.NoneFrac()
		if rep.Decided {
			decidedRounds++
		}
	}
	table := stats.NewTable(
		stats.Series{Name: "round", Values: roundCol},
		stats.Series{Name: "final", Values: finalCol},
		stats.Series{Name: "tentative", Values: tentCol},
		stats.Series{Name: "none", Values: noneCol},
	)
	if *asCSV {
		if err := table.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		if err := table.WriteText(os.Stdout); err != nil {
			return err
		}
	}

	meanFinal, _ := stats.Mean(finalCol)
	fmt.Fprintf(os.Stderr,
		"\n%d/%d rounds decided; mean final fraction %.1f%%; chain height %d; gossip: %+v\n",
		decidedRounds, *rounds, 100*meanFinal, runner.Canonical().Len(), runner.Network().Stats())
	return nil
}
