package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":     {"-no-such-flag"},
		"positional args":  {"extra"},
		"bad sparse mode":  {"-sparse", "never"},
		"fractions over 1": {"-defect", "0.6", "-malicious", "0.6"},
		"zero runs":        {"-runs", "0"},
		"sparse frac taus": {"-sparse", "on", "-tauStep", "0.5"},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(args, &stdout, &stderr); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

// TestRunSparseWorkerDeterminism pins the CLI contract the run pool
// promises: the -workers value must not change one output byte, sparse
// path included.
func TestRunSparseWorkerDeterminism(t *testing.T) {
	sweep := func(workers string) string {
		var stdout, stderr bytes.Buffer
		args := []string{
			"-nodes", "300", "-rounds", "4", "-runs", "3", "-csv",
			"-sparse", "on", "-tauStep", "30", "-tauFinal", "40",
			"-workers", workers,
		}
		if err := run(args, &stdout, &stderr); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return stdout.String()
	}
	serial, parallel := sweep("1"), sweep("4")
	if serial != parallel {
		t.Fatalf("sparse sweep output depends on -workers:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", serial, parallel)
	}
	if !strings.HasPrefix(serial, "round,final,tentative,none") {
		t.Fatalf("unexpected CSV header: %q", serial[:min(len(serial), 60)])
	}
}
