package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":          {"-no-such-flag"},
		"bad weight backend":    {"-weightBackend", "psychic"},
		"bad weights spec":      {"-weights", "zipf:not-a-number"},
		"bad sparse mode":       {"-sparse", "never"},
		"full conflicts nodes":  {"-full", "-nodes", "50"},
		"full conflicts seed":   {"-full", "-seed", "9"},
		"unknown scenario name": {"-out", t.TempDir(), "no_such_scenario"},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(args, &stdout, &stderr); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "eclipse_equivocation") {
		t.Fatalf("-list output misses the bundled scenario:\n%s", stdout.String())
	}
}

// TestRunSparseSweep drives one tiny forced-sparse sweep end to end and
// checks the CSV outputs land.
func TestRunSparseSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := t.TempDir()
	var stdout, stderr bytes.Buffer
	args := []string{
		"-nodes", "200", "-rounds", "3", "-runs", "1", "-out", out,
		"-sparse", "on", "-tauStep", "30", "-tauFinal", "40",
		"eclipse_equivocation",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	for _, f := range []string{"scenario_eclipse_equivocation.csv", "scenario_eclipse_equivocation_audit.csv"} {
		if m, _ := filepath.Glob(filepath.Join(out, f)); len(m) != 1 {
			t.Fatalf("missing output %s", f)
		}
	}
}
