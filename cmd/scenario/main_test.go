package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":          {"-no-such-flag"},
		"bad weight backend":    {"-weightBackend", "psychic"},
		"bad weights spec":      {"-weights", "zipf:not-a-number"},
		"bad sparse mode":       {"-sparse", "never"},
		"full conflicts nodes":  {"-full", "-nodes", "50"},
		"full conflicts seed":   {"-full", "-seed", "9"},
		"unknown scenario name": {"-out", t.TempDir(), "no_such_scenario"},
		"shard without full":    {"-shard", "0/2"},
		"resume without full":   {"-resume"},
		"merge without full":    {"-mergeShards"},
		"bad shard spec":        {"-full", "-shard", "2"},
		"shard out of range":    {"-full", "-shard", "3/3"},
		"merge mixes shard":     {"-full", "-mergeShards", "-shard", "0/2"},
		"merge mixes resume":    {"-full", "-mergeShards", "-resume"},
		"merge empty out dir":   {"-full", "-mergeShards", "-out", t.TempDir()},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(args, &stdout, &stderr); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "eclipse_equivocation") {
		t.Fatalf("-list output misses the bundled scenario:\n%s", stdout.String())
	}
}

// TestRunSparseSweep drives one tiny forced-sparse sweep end to end and
// checks the CSV outputs land.
func TestRunSparseSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := t.TempDir()
	var stdout, stderr bytes.Buffer
	args := []string{
		"-nodes", "200", "-rounds", "3", "-runs", "1", "-out", out,
		"-sparse", "on", "-tauStep", "30", "-tauFinal", "40",
		"eclipse_equivocation",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	for _, f := range []string{"scenario_eclipse_equivocation.csv", "scenario_eclipse_equivocation_audit.csv"} {
		if m, _ := filepath.Glob(filepath.Join(out, f)); len(m) != 1 {
			t.Fatalf("missing output %s", f)
		}
	}
}

// fullGridArgs is the reduced grid the end-to-end CLI tests drive: 2
// scenarios x 2 seeds at 60 nodes, 5 rounds — the CI smoke's shape.
func fullGridArgs(out string, extra ...string) []string {
	args := []string{
		"-full", "-fullNodes", "60", "-fullRounds", "5", "-fullSeeds", "2",
		"-out", out,
	}
	args = append(args, extra...)
	return append(args, "honest_baseline", "crash_churn")
}

// runGrid invokes run with the given args, failing the test on error.
func runGrid(t *testing.T, args []string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.String()
}

// readDirFiles maps name -> contents for every file in dir.
func readDirFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = blob
	}
	return out
}

// TestRunFullGridResume interrupts a -full grid by truncating its
// checkpoint to one recorded cell, resumes it, and pins every output
// file — checkpoint included — byte-identical to an uninterrupted run.
func TestRunFullGridResume(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cleanDir := t.TempDir()
	runGrid(t, fullGridArgs(cleanDir))
	want := readDirFiles(t, cleanDir)

	resumeDir := t.TempDir()
	runGrid(t, fullGridArgs(resumeDir))
	// "Kill" the finished run retroactively: keep the checkpoint header
	// plus one record and half of the next (a torn write), and delete
	// the outputs the missing cells would have produced.
	ckpt := filepath.Join(resumeDir, "full_grid_checkpoint_0of1.jsonl")
	blob, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(blob, []byte("\n"))
	torn := bytes.Join(lines[:2], nil)
	torn = append(torn, lines[2][:len(lines[2])/2]...)
	if err := os.WriteFile(ckpt, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	for name := range want {
		if strings.HasPrefix(name, "full_grid_") {
			continue // summaries and checkpoint stay as the kill left them
		}
		if strings.HasPrefix(name, "full_honest_baseline_s1") {
			continue // cell 0 is checkpointed, so its files predate the kill
		}
		if err := os.Remove(filepath.Join(resumeDir, name)); err != nil {
			t.Fatal(err)
		}
	}
	out := runGrid(t, fullGridArgs(resumeDir, "-resume"))
	if !strings.Contains(out, "1 cells checkpointed") {
		t.Fatalf("resume did not restore the checkpointed cell:\n%s", out)
	}
	got := readDirFiles(t, resumeDir)
	for name, blob := range want {
		if !bytes.Equal(got[name], blob) {
			t.Fatalf("%s differs between uninterrupted and resumed runs", name)
		}
	}
}

// TestRunFullGridShardMerge runs the grid as two shards plus a merge
// and pins the merged summaries byte-identical to an unsharded run's.
func TestRunFullGridShardMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cleanDir := t.TempDir()
	runGrid(t, fullGridArgs(cleanDir))
	want := readDirFiles(t, cleanDir)

	shardDir := t.TempDir()
	runGrid(t, fullGridArgs(shardDir, "-shard", "0/2"))
	runGrid(t, fullGridArgs(shardDir, "-shard", "1/2"))
	if _, err := os.Stat(filepath.Join(shardDir, "full_grid_summary_0of2.csv")); err != nil {
		t.Fatalf("shard 0/2 wrote no partial summary: %v", err)
	}
	runGrid(t, fullGridArgs(shardDir, "-mergeShards"))
	got := readDirFiles(t, shardDir)
	for name, blob := range want {
		if name == "full_grid_checkpoint_0of1.jsonl" {
			continue // shards checkpoint under their own names
		}
		if !bytes.Equal(got[name], blob) {
			t.Fatalf("%s differs between unsharded and shard-merged runs", name)
		}
	}
}
