// Command scenario sweeps adversary scenarios over the BA* simulator and
// reports per-round outcome fractions plus the safety/liveness audit.
//
// Usage:
//
//	scenario -list
//	scenario [-nodes N] [-rounds N] [-runs N] [-seed N] [-workers N] [-trim F] [-out DIR]
//	         [-weightBackend direct|indexed] [-weights SPEC]
//	         [-sparse auto|on|off] [-tauStep T] [-tauFinal T]
//	         [-metricsAddr HOST:PORT] [-trace FILE] [name ...]
//	scenario -all
//	scenario -full [-fullNodes N] [-fullRounds N] [-fullSeeds N] [name ...]
//
// With no names and no -all, the bundled eclipse_equivocation scenario
// runs. Each scenario writes two CSVs to -out: scenario_<name>.csv with
// the per-round outcome fractions and scenario_<name>_audit.csv with the
// merged audit counters. Every sweep goes through the deterministic run
// pool: any -workers value yields bit-for-bit identical output.
//
// -weightBackend selects the ledger-backed weight oracle each run's
// sortition reads ("direct" is bit-identical to reading the ledger;
// "indexed" maintains an incremental stake index). -weights replaces
// ledger weights entirely with a synthetic per-run profile, e.g.
// "zipf:1.3:40;churn@6:0.2:0.5" — Zipf exponent 1.3, mean stake 40,
// and at round 6 a random 20% of nodes rescaled to half weight. Both
// apply to -full grids too; see internal/weight.
//
// -metricsAddr serves the live telemetry registry (/metrics in
// Prometheus text format, /debug/vars, /debug/pprof) while the sweep
// or grid runs; -trace records a Chrome-trace timeline of the first
// simulated run (first grid cell under -full). Both are
// observation-only: every CSV and summary stays byte-identical with
// them on, off, or scraped mid-run.
//
// -sparse selects the protocol round path ("auto" engages the
// sparse-committee sampler for populations of 4096+ nodes when the
// committee taus are absolute; "on" forces it, "off" forces the dense
// per-node sweep). -tauStep/-tauFinal override the committee sizes —
// values > 1 are absolute seat counts, which sparse runs require. All
// three apply to -full grids too, so a grid cell can run at 5000+ nodes.
//
// -full switches to the paper-scale robustness grid: every named (or,
// by default, every registered) scenario crossed with -fullSeeds seeds
// at -fullNodes nodes, one independent simulation per cell. Each cell
// writes full_<name>_s<seed>.csv (per-round outcome fractions) and
// full_<name>_s<seed>_audit.csv; full_grid_summary.csv collects one row
// per cell and full_grid_stream_summary.csv the memory-bounded
// per-column statistics. The grid streams every cell through the
// experiments.Sink API in ascending cell order, so memory stays
// O(in-flight cells) rather than O(grid), and appends each completed
// cell to a checkpoint (full_grid_checkpoint_<i>of<n>.jsonl) as it
// lands. The process exits non-zero if any cell's audit observes a
// safety violation.
//
// Grid runs are interruptible and partitionable:
//
//	scenario -full -resume             # continue an interrupted grid
//	scenario -full -shard 1/3          # run only cells with index ≡ 1 (mod 3)
//	scenario -full -mergeShards        # merge completed shard checkpoints
//
// -resume reloads the checkpoint (dropping a torn final line from a
// killed process) and re-simulates only the missing cells; the merged
// outputs are byte-identical to an uninterrupted run's. -shard i/n
// deterministically assigns every cell to exactly one of n cooperating
// processes sharing -out; each writes its own checkpoint and a partial
// summary (full_grid_summary_<i>of<n>.csv). Once every shard finishes,
// -mergeShards validates the checkpoint set covers each cell exactly
// once and rebuilds full_grid_summary.csv and
// full_grid_stream_summary.csv, byte-identical to an unsharded run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/cliutil"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/obs"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/stats"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "scenario:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list        = fs.Bool("list", false, "list registered scenarios and exit")
		all         = fs.Bool("all", false, "run every registered scenario")
		nodes       = fs.Int("nodes", 100, "network size per run")
		rounds      = fs.Int("rounds", 12, "rounds per run")
		runs        = fs.Int("runs", 4, "independent runs per scenario")
		seed        = cliutil.Seed(fs, 1, "base seed; run i derives its own")
		workers     = cliutil.Workers(fs)
		trim        = fs.Float64("trim", 0.20, "trimmed-mean fraction for per-round aggregation")
		outDir      = fs.String("out", "results", "output directory for CSV files")
		full        = fs.Bool("full", false, "run the paper-scale scenario×seed grid instead of per-scenario sweeps")
		fullNodes   = fs.Int("fullNodes", 500, "-full: network size per grid cell")
		fullRounds  = fs.Int("fullRounds", 12, "-full: rounds per grid cell")
		fullSeeds   = fs.Int("fullSeeds", 3, "-full: number of seeds (1..N) forming the grid's second axis")
		shardSpec   = fs.String("shard", "", "-full: run only this shard of the grid, as i/n (cells with index ≡ i mod n)")
		resume      = fs.Bool("resume", false, "-full: resume from this shard's checkpoint, re-simulating only unrecorded cells")
		mergeShards = fs.Bool("mergeShards", false, "-full: merge completed shard checkpoints in -out into the grid summaries instead of simulating")
		weights     = cliutil.Weights(fs)
		sparseFlags = cliutil.Sparse(fs)
		obsFlags    = cliutil.Obs(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	backend, profile, err := weights.Resolve()
	if err != nil {
		return err
	}
	sparse, params, err := sparseFlags.Resolve()
	if err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(stdout); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if *list {
		for _, s := range adversary.Builtin() {
			fmt.Fprintf(stdout, "%-22s %s\n", s.Name, s.Description)
		}
		return nil
	}

	names := fs.Args()
	if !*full {
		// The grid-execution flags are meaningless for per-scenario
		// sweeps; silently ignoring them would mislead worse than failing.
		for name, set := range map[string]bool{
			"shard": *shardSpec != "", "resume": *resume, "mergeShards": *mergeShards,
		} {
			if set {
				return fmt.Errorf("-%s only applies to -full grids", name)
			}
		}
		if *all {
			names = adversary.Names()
		} else if len(names) == 0 {
			names = []string{adversary.EclipseEquivocation}
		}
		return runSweeps(names, *nodes, *rounds, *runs, *seed, *workers, *trim, *outDir, backend, profile, sparse, params, sess.Trace(), stdout)
	}

	// The grid has its own axes (-fullNodes/-fullRounds/-fullSeeds);
	// silently ignoring the per-sweep flags would hand the user a
	// 500-node grid they did not configure, so reject the mix loudly.
	conflicting := map[string]bool{
		"nodes": true, "rounds": true, "runs": true,
		"seed": true, "trim": true, "all": true,
	}
	var conflict error
	fs.Visit(func(f *flag.Flag) {
		if conflicting[f.Name] && conflict == nil {
			conflict = fmt.Errorf("-%s does not apply to -full (use -fullNodes/-fullRounds/-fullSeeds; the grid always runs seeds 1..N)", f.Name)
		}
	})
	if conflict != nil {
		return conflict
	}
	shard, err := experiments.ParseShard(*shardSpec)
	if err != nil {
		return err
	}
	if *mergeShards && (*shardSpec != "" || *resume) {
		return errors.New("-mergeShards runs alone: it only reads completed shard checkpoints")
	}
	if len(names) == 0 {
		names = adversary.Names()
	}
	g := gridRun{
		nodes: *fullNodes, rounds: *fullRounds, seeds: *fullSeeds,
		workers: *workers, outDir: *outDir,
		backend: backend, profile: profile, weightsSpec: weights.Spec(),
		sparse: sparse, params: params,
		shard: shard, resume: *resume,
		trace: sess.Trace(),
	}
	if *mergeShards {
		return g.mergeShards(names, stdout)
	}
	return g.run(names, stdout)
}

// gridRun bundles the -full execution knobs.
type gridRun struct {
	nodes, rounds, seeds int
	workers              int
	outDir               string
	backend              weight.Backend
	profile              experiments.WeightProfile
	weightsSpec          string
	sparse               protocol.SparseMode
	params               protocol.Params
	shard                experiments.ShardSpec
	resume               bool
	trace                *obs.Trace
}

// config builds the grid config the named scenarios define.
func (g gridRun) config(names []string) (experiments.ScenarioGridConfig, error) {
	cfg := experiments.FullScenarioGridConfig()
	if g.seeds < 1 {
		return cfg, fmt.Errorf("-fullSeeds must be >= 1, got %d", g.seeds)
	}
	cfg.Scenarios = names
	cfg.Nodes = g.nodes
	cfg.Rounds = g.rounds
	cfg.Workers = g.workers
	cfg.WeightBackend = g.backend
	cfg.WeightProfile = g.profile
	cfg.Sparse = g.sparse
	cfg.Params = g.params
	cfg.Trace = g.trace
	cfg.Seeds = make([]int64, g.seeds)
	for i := range cfg.Seeds {
		cfg.Seeds[i] = int64(i + 1)
	}
	return cfg, nil
}

// summaryName is this shard's grid-summary filename (the whole grid
// writes the canonical full_grid_summary.csv).
func (g gridRun) summaryName() string {
	if g.shard.Count > 1 {
		return fmt.Sprintf("full_grid_summary_%dof%d.csv", g.shard.Index, g.shard.Count)
	}
	return "full_grid_summary.csv"
}

// run executes this shard of the grid through the streaming sink
// stack: per-cell text lines and CSVs, the memory-bounded stream
// summary, and a durable checkpoint every other sink feeds ahead of.
func (g gridRun) run(names []string, stdout io.Writer) error {
	cfg, err := g.config(names)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(g.outDir, 0o755); err != nil {
		return err
	}
	fingerprint := experiments.GridFingerprint(cfg, g.weightsSpec)
	ckptPath := filepath.Join(g.outDir, experiments.GridCheckpointName(g.shard))

	var prior []experiments.GridCellRecord
	if g.resume {
		if prior, err = experiments.LoadGridCheckpoint(ckptPath, fingerprint, g.shard); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "==> full grid: %d scenarios x %d seeds at %d nodes, %d rounds/cell (shard %s, %d cells checkpointed)\n",
		len(cfg.Scenarios), g.seeds, g.nodes, g.rounds, g.shard, len(prior))

	// Rewriting the checkpoint heals any torn tail; the in-order fold
	// appends re-simulated cells behind the restored prefix, so the
	// finished file is byte-identical to an uninterrupted run's.
	ckpt, err := experiments.CreateGridCheckpoint(ckptPath, fingerprint, g.shard, prior)
	if err != nil {
		return err
	}
	defer ckpt.Close()
	restored := make(map[int]adversary.Report, len(prior))
	for _, rec := range prior {
		restored[rec.Index] = rec.Audit
	}
	csv := experiments.NewGridCSVSink(g.outDir, cfg, g.summaryName())
	csv.SetLog(stdout)
	summary := experiments.NewSummarySink(0)
	summary.Restore(prior)
	// Checkpoint last: a recorded cell implies every other sink consumed it.
	sink := experiments.MultiSink(&experiments.GridTextSink{W: stdout}, csv, summary, experiments.NewCheckpointSink(ckpt, 0))
	opt := experiments.StreamOptions{Shard: g.shard, Restored: restored}
	if err := experiments.StreamScenarioGrid(cfg, sink, opt); err != nil {
		return err
	}
	if err := ckpt.Close(); err != nil {
		return err
	}
	if err := csv.Close(); err != nil {
		return err
	}
	if g.shard.Count <= 1 {
		table, err := summary.Table()
		if err != nil {
			return err
		}
		if err := writeCSV(stdout, g.outDir, "full_grid_stream_summary.csv", table); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "grid shard %s: %d cells done, safety violations %d\n",
		g.shard, csv.CellsSeen(), csv.SafetyViolations())
	if v := csv.SafetyViolations(); v > 0 {
		return fmt.Errorf("safety audit failed: %d conflicting-finalisation round(s) across the grid", v)
	}
	return nil
}

// mergeShards rebuilds the whole-grid summaries from completed shard
// checkpoints, byte-identical to an unsharded run's.
func (g gridRun) mergeShards(names []string, stdout io.Writer) error {
	cfg, err := g.config(names)
	if err != nil {
		return err
	}
	fingerprint := experiments.GridFingerprint(cfg, g.weightsSpec)
	wantCells := len(cfg.Scenarios) * len(cfg.Seeds)
	records, err := experiments.MergeGridCheckpoints(g.outDir, fingerprint, wantCells)
	if err != nil {
		return err
	}
	if err := writeCSV(stdout, g.outDir, "full_grid_summary.csv", experiments.GridSummaryFromRecords(cfg, records)); err != nil {
		return err
	}
	summaries := make([]*experiments.CellSummary, 0, len(records))
	violations := 0
	for _, rec := range records {
		violations += rec.Audit.SafetyViolations
		if rec.Summary == nil {
			return fmt.Errorf("cell %d checkpoint record carries no stream summary", rec.Index)
		}
		summaries = append(summaries, rec.Summary)
	}
	table, err := experiments.StreamSummaryTable(summaries)
	if err != nil {
		return err
	}
	if err := writeCSV(stdout, g.outDir, "full_grid_stream_summary.csv", table); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "merged %d cells from shard checkpoints, safety violations %d\n", len(records), violations)
	if violations > 0 {
		return fmt.Errorf("safety audit failed: %d conflicting-finalisation round(s) across the grid", violations)
	}
	return nil
}

func runSweeps(names []string, nodes, rounds, runs int, seed int64, workers int, trim float64, outDir string, backend weight.Backend, profile experiments.WeightProfile, sparse protocol.SparseMode, params protocol.Params, trace *obs.Trace, stdout io.Writer) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	violations := 0
	for i, name := range names {
		cfg := experiments.DefaultScenarioConfig(name)
		cfg.Nodes = nodes
		cfg.Rounds = rounds
		cfg.Runs = runs
		cfg.Seed = seed
		cfg.Workers = workers
		cfg.TrimFrac = trim
		cfg.WeightBackend = backend
		cfg.WeightProfile = profile
		cfg.Sparse = sparse
		cfg.Params = params
		if i == 0 {
			cfg.Trace = trace // single-writer: first scenario's run 0 only
		}
		fmt.Fprintf(stdout, "==> %s\n", name)
		res, err := experiments.RunScenario(cfg)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		if err := res.WriteSummary(stdout); err != nil {
			return err
		}
		if err := writeCSV(stdout, outDir, "scenario_"+name+".csv", res.Table()); err != nil {
			return err
		}
		if err := writeCSV(stdout, outDir, "scenario_"+name+"_audit.csv", res.AuditTable()); err != nil {
			return err
		}
		violations += res.Audit.SafetyViolations
		fmt.Fprintln(stdout)
	}
	if violations > 0 {
		return fmt.Errorf("safety audit failed: %d conflicting-finalisation round(s) observed", violations)
	}
	return nil
}

func writeCSV(stdout io.Writer, outDir, name string, table *stats.Table) error {
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := table.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}
