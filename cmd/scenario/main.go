// Command scenario sweeps adversary scenarios over the BA* simulator and
// reports per-round outcome fractions plus the safety/liveness audit.
//
// Usage:
//
//	scenario -list
//	scenario [-nodes N] [-rounds N] [-runs N] [-seed N] [-workers N] [-trim F] [-out DIR]
//	         [-weightBackend direct|indexed] [-weights SPEC]
//	         [-sparse auto|on|off] [-tauStep T] [-tauFinal T] [name ...]
//	scenario -all
//	scenario -full [-fullNodes N] [-fullRounds N] [-fullSeeds N] [name ...]
//
// With no names and no -all, the bundled eclipse_equivocation scenario
// runs. Each scenario writes two CSVs to -out: scenario_<name>.csv with
// the per-round outcome fractions and scenario_<name>_audit.csv with the
// merged audit counters. Every sweep goes through the deterministic run
// pool: any -workers value yields bit-for-bit identical output.
//
// -weightBackend selects the ledger-backed weight oracle each run's
// sortition reads ("direct" is bit-identical to reading the ledger;
// "indexed" maintains an incremental stake index). -weights replaces
// ledger weights entirely with a synthetic per-run profile, e.g.
// "zipf:1.3:40;churn@6:0.2:0.5" — Zipf exponent 1.3, mean stake 40,
// and at round 6 a random 20% of nodes rescaled to half weight. Both
// apply to -full grids too; see internal/weight.
//
// -sparse selects the protocol round path ("auto" engages the
// sparse-committee sampler for populations of 4096+ nodes when the
// committee taus are absolute; "on" forces it, "off" forces the dense
// per-node sweep). -tauStep/-tauFinal override the committee sizes —
// values > 1 are absolute seat counts, which sparse runs require. All
// three apply to -full grids too, so a grid cell can run at 5000+ nodes.
//
// -full switches to the paper-scale robustness grid: every named (or,
// by default, every registered) scenario crossed with -fullSeeds seeds
// at -fullNodes nodes, one independent simulation per cell. Each cell
// writes full_<name>_s<seed>.csv (per-round outcome fractions) and
// full_<name>_s<seed>_audit.csv; full_grid_summary.csv collects one row
// per cell. The grid rides the copy-on-write ledger views and the
// run-pool arenas — the two mechanisms that make 500+-node cells
// affordable — and the process exits non-zero if any cell's audit
// observes a safety violation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/stats"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "scenario:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list          = fs.Bool("list", false, "list registered scenarios and exit")
		all           = fs.Bool("all", false, "run every registered scenario")
		nodes         = fs.Int("nodes", 100, "network size per run")
		rounds        = fs.Int("rounds", 12, "rounds per run")
		runs          = fs.Int("runs", 4, "independent runs per scenario")
		seed          = fs.Int64("seed", 1, "base seed; run i derives its own")
		workers       = fs.Int("workers", 0, "run-pool workers (0 = GOMAXPROCS); results are identical for every value")
		trim          = fs.Float64("trim", 0.20, "trimmed-mean fraction for per-round aggregation")
		outDir        = fs.String("out", "results", "output directory for CSV files")
		full          = fs.Bool("full", false, "run the paper-scale scenario×seed grid instead of per-scenario sweeps")
		fullNodes     = fs.Int("fullNodes", 500, "-full: network size per grid cell")
		fullRounds    = fs.Int("fullRounds", 12, "-full: rounds per grid cell")
		fullSeeds     = fs.Int("fullSeeds", 3, "-full: number of seeds (1..N) forming the grid's second axis")
		weightBackend = fs.String("weightBackend", "direct", "ledger-backed weight oracle: direct (bit-identical reads) or indexed (incremental stake index)")
		weightProfile = fs.String("weights", "", "synthetic weight profile, e.g. zipf:1.1 or zipf:1.1;churn@6:0.2:0 (empty = ledger weights)")
		sparseMode    = fs.String("sparse", "auto", "protocol round path: auto, on (sparse committees) or off (dense per-node sweep)")
		tauStep       = fs.Float64("tauStep", 0, "committee tau override: > 1 absolute seats, (0,1] fraction of stake, 0 = default")
		tauFinal      = fs.Float64("tauFinal", 0, "final-committee tau override, same units as -tauStep, 0 = default")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	backend, err := experiments.ParseWeightBackend(*weightBackend)
	if err != nil {
		return err
	}
	profile, err := experiments.ParseWeightProfile(*weightProfile)
	if err != nil {
		return err
	}
	sparse, err := protocol.ParseSparseMode(*sparseMode)
	if err != nil {
		return err
	}
	params := protocol.DefaultParams()
	if *tauStep != 0 {
		params.TauStep = *tauStep
	}
	if *tauFinal != 0 {
		params.TauFinal = *tauFinal
	}

	if *list {
		for _, s := range adversary.Builtin() {
			fmt.Fprintf(stdout, "%-22s %s\n", s.Name, s.Description)
		}
		return nil
	}

	names := fs.Args()
	if *full {
		// The grid has its own axes (-fullNodes/-fullRounds/-fullSeeds);
		// silently ignoring the per-sweep flags would hand the user a
		// 500-node grid they did not configure, so reject the mix loudly.
		conflicting := map[string]bool{
			"nodes": true, "rounds": true, "runs": true,
			"seed": true, "trim": true, "all": true,
		}
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			if conflicting[f.Name] && conflict == nil {
				conflict = fmt.Errorf("-%s does not apply to -full (use -fullNodes/-fullRounds/-fullSeeds; the grid always runs seeds 1..N)", f.Name)
			}
		})
		if conflict != nil {
			return conflict
		}
		if len(names) == 0 {
			names = adversary.Names()
		}
		return runFullGrid(names, *fullNodes, *fullRounds, *fullSeeds, *workers, *outDir, backend, profile, sparse, params, stdout)
	}
	if *all {
		names = adversary.Names()
	} else if len(names) == 0 {
		names = []string{adversary.EclipseEquivocation}
	}
	return runSweeps(names, *nodes, *rounds, *runs, *seed, *workers, *trim, *outDir, backend, profile, sparse, params, stdout)
}

// runFullGrid executes the paper-scale scenario×seed grid and writes the
// per-cell CSVs plus the grid summary.
func runFullGrid(names []string, nodes, rounds, seeds, workers int, outDir string, backend weight.Backend, profile experiments.WeightProfile, sparse protocol.SparseMode, params protocol.Params, stdout io.Writer) error {
	if seeds < 1 {
		return fmt.Errorf("-fullSeeds must be >= 1, got %d", seeds)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	cfg := experiments.FullScenarioGridConfig()
	cfg.Scenarios = names
	cfg.Nodes = nodes
	cfg.Rounds = rounds
	cfg.Workers = workers
	cfg.WeightBackend = backend
	cfg.WeightProfile = profile
	cfg.Sparse = sparse
	cfg.Params = params
	cfg.Seeds = make([]int64, seeds)
	for i := range cfg.Seeds {
		cfg.Seeds[i] = int64(i + 1)
	}
	fmt.Fprintf(stdout, "==> full grid: %d scenarios x %d seeds at %d nodes, %d rounds/cell\n",
		len(cfg.Scenarios), seeds, nodes, rounds)
	res, err := experiments.RunScenarioGrid(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(stdout); err != nil {
		return err
	}
	for i := range res.Cells {
		cell := &res.Cells[i]
		base := fmt.Sprintf("full_%s_s%d", cell.Scenario, cell.Seed)
		if err := writeCSV(stdout, outDir, base+".csv", cell.Table()); err != nil {
			return err
		}
		if err := writeCSV(stdout, outDir, base+"_audit.csv", cell.AuditTable()); err != nil {
			return err
		}
	}
	if err := writeCSV(stdout, outDir, "full_grid_summary.csv", res.SummaryTable()); err != nil {
		return err
	}
	if v := res.SafetyViolations(); v > 0 {
		return fmt.Errorf("safety audit failed: %d conflicting-finalisation round(s) across the grid", v)
	}
	return nil
}

func runSweeps(names []string, nodes, rounds, runs int, seed int64, workers int, trim float64, outDir string, backend weight.Backend, profile experiments.WeightProfile, sparse protocol.SparseMode, params protocol.Params, stdout io.Writer) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	violations := 0
	for _, name := range names {
		cfg := experiments.DefaultScenarioConfig(name)
		cfg.Nodes = nodes
		cfg.Rounds = rounds
		cfg.Runs = runs
		cfg.Seed = seed
		cfg.Workers = workers
		cfg.TrimFrac = trim
		cfg.WeightBackend = backend
		cfg.WeightProfile = profile
		cfg.Sparse = sparse
		cfg.Params = params
		fmt.Fprintf(stdout, "==> %s\n", name)
		res, err := experiments.RunScenario(cfg)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		if err := res.WriteSummary(stdout); err != nil {
			return err
		}
		if err := writeCSV(stdout, outDir, "scenario_"+name+".csv", res.Table()); err != nil {
			return err
		}
		if err := writeCSV(stdout, outDir, "scenario_"+name+"_audit.csv", res.AuditTable()); err != nil {
			return err
		}
		violations += res.Audit.SafetyViolations
		fmt.Fprintln(stdout)
	}
	if violations > 0 {
		return fmt.Errorf("safety audit failed: %d conflicting-finalisation round(s) observed", violations)
	}
	return nil
}

func writeCSV(stdout io.Writer, outDir, name string, table *stats.Table) error {
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := table.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}
