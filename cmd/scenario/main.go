// Command scenario sweeps adversary scenarios over the BA* simulator and
// reports per-round outcome fractions plus the safety/liveness audit.
//
// Usage:
//
//	scenario -list
//	scenario [-nodes N] [-rounds N] [-runs N] [-seed N] [-workers N] [-trim F] [-out DIR] [name ...]
//	scenario -all
//
// With no names and no -all, the bundled eclipse_equivocation scenario
// runs. Each scenario writes two CSVs to -out: scenario_<name>.csv with
// the per-round outcome fractions and scenario_<name>_audit.csv with the
// merged audit counters. Every sweep goes through the deterministic run
// pool: any -workers value yields bit-for-bit identical output.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

func main() {
	list := flag.Bool("list", false, "list registered scenarios and exit")
	all := flag.Bool("all", false, "run every registered scenario")
	nodes := flag.Int("nodes", 100, "network size per run")
	rounds := flag.Int("rounds", 12, "rounds per run")
	runs := flag.Int("runs", 4, "independent runs per scenario")
	seed := flag.Int64("seed", 1, "base seed; run i derives its own")
	workers := flag.Int("workers", 0, "run-pool workers (0 = GOMAXPROCS); results are identical for every value")
	trim := flag.Float64("trim", 0.20, "trimmed-mean fraction for per-round aggregation")
	outDir := flag.String("out", "results", "output directory for CSV files")
	flag.Parse()

	if *list {
		for _, s := range adversary.Builtin() {
			fmt.Printf("%-22s %s\n", s.Name, s.Description)
		}
		return
	}

	names := flag.Args()
	if *all {
		names = adversary.Names()
	} else if len(names) == 0 {
		names = []string{adversary.EclipseEquivocation}
	}
	if err := run(names, *nodes, *rounds, *runs, *seed, *workers, *trim, *outDir); err != nil {
		log.Fatal(err)
	}
}

func run(names []string, nodes, rounds, runs int, seed int64, workers int, trim float64, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	violations := 0
	for _, name := range names {
		cfg := experiments.DefaultScenarioConfig(name)
		cfg.Nodes = nodes
		cfg.Rounds = rounds
		cfg.Runs = runs
		cfg.Seed = seed
		cfg.Workers = workers
		cfg.TrimFrac = trim
		fmt.Printf("==> %s\n", name)
		res, err := experiments.RunScenario(cfg)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		if err := res.WriteSummary(os.Stdout); err != nil {
			return err
		}
		if err := writeCSV(outDir, "scenario_"+name+".csv", res.Table()); err != nil {
			return err
		}
		if err := writeCSV(outDir, "scenario_"+name+"_audit.csv", res.AuditTable()); err != nil {
			return err
		}
		violations += res.Audit.SafetyViolations
		fmt.Println()
	}
	if violations > 0 {
		return fmt.Errorf("safety audit failed: %d conflicting-finalisation round(s) observed", violations)
	}
	return nil
}

func writeCSV(outDir, name string, table *stats.Table) error {
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := table.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
