package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no_such_file")
	for name, args := range map[string][]string{
		"unknown flag":       {"-no-such-flag"},
		"positional args":    {"extra"},
		"bad distribution":   {"-dist", "lognormal"},
		"bad zipf exponent":  {"-dist", "zipf:xyz"},
		"missing stake file": {"-stakes", missing},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(args, &stdout, &stderr); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

func TestRunCertifiesSmallPopulation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dist", "u200", "-nodes", "1000"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if !strings.Contains(stdout.String(), "certified") {
		t.Fatalf("output misses the certification line:\n%s", stdout.String())
	}
}
