// Command rewardcalc runs Algorithm 1 for a stake population and prints
// the incentive-compatible reward parameters (α, β, γ, B_i), the three
// Theorem 3 bounds at the optimum, and a Nash-equilibrium certification.
//
// The population is either sampled from a named distribution or read from
// a file with one stake per line.
//
// Usage:
//
//	rewardcalc [-dist u200|n100-20|n100-10|n2000-25] [-nodes N]
//	           [-stakes file] [-floor W] [-seed S]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/dsn2020-algorand/incentives/internal/cliutil"
	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "rewardcalc:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rewardcalc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		distName  = fs.String("dist", "u200", "stake distribution: u200, n100-20, n100-10, n2000-25, pareto, zipf[:exponent]")
		nodes     = fs.Int("nodes", 100_000, "population size when sampling")
		stakeFile = fs.String("stakes", "", "file with one stake per line (overrides -dist)")
		floor     = fs.Float64("floor", 0, "ignore sync-set stakes below this value (paper's s*_k floor)")
		seed      = cliutil.Seed(fs, 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.NoArgs(fs); err != nil {
		return err
	}

	pop, err := loadPopulation(*stakeFile, *distName, *nodes, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "population: %d accounts, total %.1f Algos, min %.3f, max %.3f\n",
		pop.N(), pop.Total(), pop.Min(), pop.Max())

	costs := game.DefaultRoleCosts()
	opts := core.Options{OtherFloor: *floor}
	in, err := core.InputsFromPopulation(pop, costs, opts)
	if err != nil {
		return err
	}
	params, err := core.Minimize(in)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\nAlgorithm 1 output:\n")
	fmt.Fprintf(stdout, "  alpha = %.6g\n  beta  = %.6g\n  gamma = %.6g\n", params.Alpha, params.Beta, params.Gamma)
	fmt.Fprintf(stdout, "  B_i   = %.6g Algos per round (infimum %.6g, binding: %s)\n",
		params.B, params.MinB, params.Binding)

	l, m, k := core.Bounds(in, params.Alpha, params.Beta)
	fmt.Fprintf(stdout, "\nTheorem 3 bounds at the optimum:\n")
	fmt.Fprintf(stdout, "  leader:    %.6g\n  committee: %.6g\n  others:    %.6g\n", l, m, k)

	if err := core.VerifyIncentiveCompatible(in, params); err != nil {
		return fmt.Errorf("certification FAILED: %w", err)
	}
	fmt.Fprintf(stdout, "\ncertified: cooperative profile is a Nash equilibrium at B_i\n")
	return nil
}

func loadPopulation(file, dist string, nodes int, seed int64) (*stake.Population, error) {
	if file != "" {
		return readStakes(file)
	}
	// "zipf[:exponent]" draws from the synthetic weight-oracle profile
	// (rank-based heavy tail at mean stake 100), so Algorithm 1 can be
	// priced on the same distribution the simulator's Zipf runs use.
	if body, ok := strings.CutPrefix(dist, "zipf"); ok {
		exponent := 1.1
		if e, ok := strings.CutPrefix(body, ":"); ok {
			var err error
			if exponent, err = strconv.ParseFloat(e, 64); err != nil {
				return nil, fmt.Errorf("bad zipf exponent %q: %w", e, err)
			}
		} else if body != "" {
			return nil, fmt.Errorf("unknown distribution %q", dist)
		}
		oracle := weight.NewZipf(nodes, exponent, 100*float64(nodes), seed)
		return &stake.Population{Stakes: weight.Snapshot(oracle, 0)}, nil
	}
	var d stake.Distribution
	switch dist {
	case "u200":
		d = stake.Uniform{A: 1, B: 200}
	case "n100-20":
		d = stake.Normal{Mu: 100, Sigma: 20}
	case "n100-10":
		d = stake.Normal{Mu: 100, Sigma: 10}
	case "n2000-25":
		d = stake.Normal{Mu: 2000, Sigma: 25}
	case "pareto":
		d = stake.Pareto{Xm: 10, Alpha: 1.5}
	default:
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	return stake.SamplePopulation(d, nodes, sim.NewRNG(seed, "rewardcalc"))
}

func readStakes(path string) (*stake.Population, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var stakes []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("parse stake %q: %w", line, err)
		}
		stakes = append(stakes, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(stakes) == 0 {
		return nil, fmt.Errorf("no stakes in %s", path)
	}
	return &stake.Population{Stakes: stakes}, nil
}
