// Package incentives_bench regenerates every table and figure of the
// paper's evaluation as Go benchmarks. Each benchmark runs a scaled-down
// configuration per iteration and reports the headline metric through
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. cmd/benchgen produces the full CSV outputs.
package incentives_bench

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/analysis"
	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/evolution"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/rewards"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// BenchmarkTableIII regenerates the Foundation reward schedule (Table III)
// and reports the period-1 per-round reward (paper: 20 Algos).
func BenchmarkTableIII(b *testing.B) {
	var perRound float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		perRound = res.Rows[0].PerRound
	}
	b.ReportMetric(perRound, "algos/round-period1")
}

// BenchmarkFig3 runs one defection simulation per iteration (Fig. 3 panel
// at 15% defection) and reports the mean final-block fraction.
func BenchmarkFig3(b *testing.B) {
	cfg := experiments.DefaultFig3Config()
	cfg.Runs = 1
	cfg.Rounds = 5
	cfg.DefectionRates = []float64{0.15}
	var meanFinal float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanFinal = res.Series[0].MeanFinal()
	}
	b.ReportMetric(meanFinal, "final-frac-d15")
}

// BenchmarkFig5 evaluates the (α, β) reward surface and reports the
// minimum feasible reward (paper: ≈5.2 Algos at (0.02, 0.03)).
func BenchmarkFig5(b *testing.B) {
	cfg := experiments.DefaultFig5Config()
	var minB float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		minB = res.GridBest.B
	}
	b.ReportMetric(minB, "algos-minB-grid")
}

// BenchmarkFig6 computes the B_i distribution across stake distributions
// (Fig. 6, scaled down) and reports the U(1,200) mean (paper: ~50 Algos
// at 500k nodes / 50M Algos).
func BenchmarkFig6(b *testing.B) {
	cfg := experiments.DefaultFig6Config()
	cfg.Nodes = 20_000
	cfg.Runs = 3
	cfg.RoundsPerRun = 2
	var meanB float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanB = res.Panels[0].Summary.Mean
	}
	b.ReportMetric(meanB, "algos-B-u200")
}

// BenchmarkFig7AB compares per-round rewards of the mechanism against the
// Foundation schedule (Fig. 7 a-b) and reports the accumulated saving
// fraction after 12 periods.
func BenchmarkFig7AB(b *testing.B) {
	cfg := experiments.DefaultFig7Config()
	cfg.Nodes = 20_000
	cfg.Runs = 2
	cfg.RemovalThresholds = nil
	var saving float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := cfg.Periods - 1
		saving = 1 - res.Ours[1].Accumulated[last]/res.Foundation.Accumulated[last]
	}
	b.ReportMetric(saving, "saving-frac-n100-20")
}

// BenchmarkFig7C evaluates the small-stake removal curves (Fig. 7-c) and
// reports the ratio of the w=7 reward to the unfiltered reward.
func BenchmarkFig7C(b *testing.B) {
	cfg := experiments.DefaultFig7Config()
	cfg.Nodes = 20_000
	cfg.Runs = 2
	cfg.Distributions = []stake.Distribution{stake.Uniform{A: 1, B: 200}}
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Removal[3].PerRound[0] / res.Removal[0].PerRound[0]
	}
	b.ReportMetric(ratio, "B-ratio-w7-vs-w0")
}

// BenchmarkEquilibrium certifies the analytical claims (Thm 1-3, Lemma 1)
// on random games and reports the fraction of claims holding (must be 1).
func BenchmarkEquilibrium(b *testing.B) {
	cfg := experiments.DefaultEquilibriumConfig()
	cfg.Samples = 5
	var ok float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunEquilibrium(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.AllHold() {
			ok = 1
		} else {
			ok = 0
		}
	}
	b.ReportMetric(ok, "claims-hold")
}

// BenchmarkEvolution runs the repeated-round best-response dynamics under
// both schemes (extension experiment) and reports the role-based scheme's
// producing-prefix committee disposition (should stay ~1).
func BenchmarkEvolution(b *testing.B) {
	cfg := evolution.DefaultConfig(evolution.SchemeRoleBased)
	cfg.Rounds = 60
	cfg.Nodes = 150
	var disposition float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := evolution.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, disposition = res.PrefixStratCoop()
	}
	b.ReportMetric(disposition, "prefix-committee-coop")
}

// --- Ablations (DESIGN.md) ------------------------------------------------

// BenchmarkAblationOptimizer compares the closed-form Algorithm 1
// optimiser against dense grid search.
func BenchmarkAblationOptimizer(b *testing.B) {
	in := core.Inputs{
		SL: 26, SM: 13_000, SK: 50e6 - 13_026,
		MinLeader: 1, MinCommittee: 1, MinOther: 10,
		Costs: game.DefaultRoleCosts(),
	}
	b.Run("analytic", func(b *testing.B) {
		var minB float64
		for i := 0; i < b.N; i++ {
			p, err := core.Minimize(in)
			if err != nil {
				b.Fatal(err)
			}
			minB = p.MinB
		}
		b.ReportMetric(minB, "algos-minB")
	})
	b.Run("grid200", func(b *testing.B) {
		var minB float64
		for i := 0; i < b.N; i++ {
			p, err := core.GridMinimize(in, 200)
			if err != nil {
				b.Fatal(err)
			}
			minB = p.MinB
		}
		b.ReportMetric(minB, "algos-minB")
	})
}

// BenchmarkAblationSortition measures binomial sub-user sortition across
// stake magnitudes (the cost grows with the number of selected
// sub-users, not the raw stake).
func BenchmarkAblationSortition(b *testing.B) {
	rng := sim.NewRNG(1, "bench.sortition")
	key := vrf.GenerateKey(rng)
	for _, stakeSize := range []float64{10, 1_000, 100_000} {
		b.Run(benchName("stake", stakeSize), func(b *testing.B) {
			b.ReportAllocs()
			p := sortition.Params{
				Seed: [32]byte{1}, Role: sortition.RoleCommittee,
				Tau: 1000, TotalStake: 1e6,
			}
			for i := 0; i < b.N; i++ {
				p.Round = uint64(i)
				if _, err := sortition.Select(key.Private, stakeSize, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSortitionSelect compares one Select through the scalar path
// against the cached threshold-table oracle (internal/sortition.Cache),
// with allocation counts reported; the alloc-budget tests in
// internal/protocol pin both paths at zero allocations.
func BenchmarkSortitionSelect(b *testing.B) {
	rng := sim.NewRNG(4, "bench.select")
	key := vrf.GenerateKey(rng)
	p := sortition.Params{
		Seed: [32]byte{3}, Role: sortition.RoleCommittee,
		Tau: 1000, TotalStake: 1e6,
	}
	const stake = 1_000
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Round = uint64(i)
			if _, err := sortition.Select(key.Private, stake, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		cache := sortition.NewCache()
		for i := 0; i < b.N; i++ {
			p.Round = uint64(i)
			if _, err := cache.Select(key.Private, stake, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-verify", func(b *testing.B) {
		b.ReportAllocs()
		cache := sortition.NewCache()
		p.Round = 1
		res, err := cache.Select(key.Private, stake, p)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if !cache.Verify(key.Public, stake, p, res) {
				b.Fatal("verify failed")
			}
		}
	})
}

// BenchmarkAblationFanout measures how the gossip fan-out changes the
// defection collapse point: final fraction at 15% defection for k=3,5,8.
func BenchmarkAblationFanout(b *testing.B) {
	for _, fanout := range []int{3, 5, 8} {
		fanout := fanout
		b.Run(benchName("k", float64(fanout)), func(b *testing.B) {
			cfg := experiments.DefaultFig3Config()
			cfg.Runs = 1
			cfg.Rounds = 5
			cfg.Fanout = fanout
			cfg.DefectionRates = []float64{0.15}
			var frac float64
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				res, err := experiments.RunFig3(cfg)
				if err != nil {
					b.Fatal(err)
				}
				frac = res.Series[0].MeanFinal()
			}
			b.ReportMetric(frac, "final-frac")
		})
	}
}

// BenchmarkAblationStakeFloor compares Algorithm 1 with and without the
// paper's "ignore stakes below 10" sync-set floor on U(1,200).
func BenchmarkAblationStakeFloor(b *testing.B) {
	pop, err := stake.SamplePopulation(stake.Uniform{A: 1, B: 200}, 50_000, sim.NewRNG(3, "bench.floor"))
	if err != nil {
		b.Fatal(err)
	}
	costs := game.DefaultRoleCosts()
	for _, floor := range []float64{0, 10} {
		floor := floor
		b.Run(benchName("floor", floor), func(b *testing.B) {
			var bi float64
			for i := 0; i < b.N; i++ {
				p, err := core.ComputeParameters(pop, costs, core.Options{OtherFloor: floor})
				if err != nil {
					b.Fatal(err)
				}
				bi = p.B
			}
			b.ReportMetric(bi, "algos-B")
		})
	}
}

// BenchmarkWeakSync reproduces the Fig. 3-(c) asynchrony spike: a forced
// weak-synchrony window mid-run; reports the consensus-loss spike ratio.
func BenchmarkWeakSync(b *testing.B) {
	cfg := experiments.DefaultWeakSyncConfig()
	cfg.Runs = 1
	cfg.Rounds = 16
	cfg.WindowFrom, cfg.WindowTo = 7, 8
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunWeakSync(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.SpikeRatio()
	}
	b.ReportMetric(ratio, "loss-spike-ratio")
}

// BenchmarkSensitivity measures the elasticity analysis of Algorithm 1
// and reports the dominant elasticity (c^K, ≈ +6).
func BenchmarkSensitivity(b *testing.B) {
	in := experiments.PaperFig5Inputs()
	var top float64
	for i := 0; i < b.N; i++ {
		sens, err := analysis.MechanismSensitivities(in, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if s, ok := analysis.MostSensitive(sens); ok {
			top = s.Elasticity
		}
	}
	b.ReportMetric(top, "max-elasticity")
}

// BenchmarkAblationSortitionScheme compares binomial sub-user sortition
// against the whole-node Bernoulli lottery (DESIGN.md ablation 1).
func BenchmarkAblationSortitionScheme(b *testing.B) {
	rng := sim.NewRNG(2, "bench.scheme")
	key := vrf.GenerateKey(rng)
	p := sortition.Params{
		Seed: [32]byte{2}, Role: sortition.RoleCommittee,
		Tau: 100, TotalStake: 10_000,
	}
	b.Run("binomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Round = uint64(i)
			if _, err := sortition.Select(key.Private, 50, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bernoulli", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Round = uint64(i)
			if _, err := sortition.SelectBernoulli(key.Private, 50, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProtocolRound measures the cost of one full BA* round in an
// all-honest 100-node network.
func BenchmarkProtocolRound(b *testing.B) {
	stakes := make([]float64, 100)
	behaviors := make([]protocol.Behavior, 100)
	for i := range stakes {
		stakes[i] = float64(1 + i%50)
		behaviors[i] = protocol.Honest
	}
	runner, err := protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.RunRounds(1)
	}
}

// BenchmarkRewardDistribution measures both disbursement schemes over a
// 10k-participant round.
func BenchmarkRewardDistribution(b *testing.B) {
	roles := protocol.RoundRoles{Round: 1}
	for i := 0; i < 5; i++ {
		roles.Leaders = append(roles.Leaders, protocol.RoleStake{ID: i, Stake: float64(i + 1), Weight: 1})
	}
	for i := 5; i < 100; i++ {
		roles.Committee = append(roles.Committee, protocol.RoleStake{ID: i, Stake: float64(i + 1), Weight: 1})
	}
	for i := 100; i < 10_000; i++ {
		roles.Others = append(roles.Others, protocol.RoleStake{ID: i, Stake: float64(i%200 + 1)})
	}
	b.Run("foundation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (rewards.Foundation{}).Distribute(20, roles); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("role-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (rewards.RoleBased{Alpha: 0.02, Beta: 0.03}).Distribute(20, roles); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, v float64) string {
	switch {
	case v == float64(int64(v)):
		return prefix + "=" + itoa(int64(v))
	default:
		return prefix
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
