// Command adaptive-rewards demonstrates the paper's headline capability:
// the Foundation can track the stake distribution round by round and pay
// the *minimum* reward that still guarantees cooperation, instead of the
// fixed Table III schedule. The demo starts from a uniform stake
// population, lets the synthetic transaction workload concentrate wealth
// over time, and shows the mechanism's reward shrinking while the
// Foundation schedule keeps paying 20 Algos.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/rewards"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/txgen"
)

func main() {
	nodes := flag.Int("nodes", 20000, "population size")
	roundsPerEpoch := flag.Int("rounds", 50, "rounds per reported epoch")
	epochs := flag.Int("epochs", 10, "epochs to simulate")
	flag.Parse()
	if err := run(*nodes, *roundsPerEpoch, *epochs); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, roundsPerEpoch, epochs int) error {
	rng := sim.NewRNG(7, "adaptive-rewards")
	pop, err := stake.SamplePopulation(stake.Uniform{A: 1, B: 200}, nodes, rng)
	if err != nil {
		return err
	}
	gen, err := txgen.New(txgen.Config{DrawsPerRound: nodes / 10, MaxAmount: 4}, rng)
	if err != nil {
		return err
	}

	controller := core.NewController(game.DefaultRoleCosts(), core.Options{
		// Ignore dust accounts when sizing the sync-set bound, as the
		// paper suggests for heavy-tailed stake distributions.
		OtherFloor: 3,
	})
	var schedule rewards.Schedule
	pool := rewards.NewFoundationPool()

	fmt.Println("epoch  min-stake  mean-stake  ours(B)   foundation(R)  saved%")
	round := uint64(1)
	for e := 0; e < epochs; e++ {
		var oursSum, foundSum float64
		for i := 0; i < roundsPerEpoch; i++ {
			params, err := controller.Step(pop)
			if err != nil {
				return err
			}
			ri, err := schedule.RoundReward(round)
			if err != nil {
				return err
			}
			if _, err := pool.Deposit(ri); err != nil && err != rewards.ErrCeilingReached {
				return err
			}
			if err := pool.Withdraw(params.B); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
			oursSum += params.B
			foundSum += ri
			txgen.Apply(pop, gen.Round(pop))
			round++
		}
		saved := 100 * (1 - oursSum/foundSum)
		fmt.Printf("%5d  %9.2f  %10.2f  %8.3f  %13.1f  %5.1f%%\n",
			e+1, pop.Min(), pop.Total()/float64(pop.N()),
			oursSum/float64(roundsPerEpoch), foundSum/float64(roundsPerEpoch), saved)
	}
	fmt.Printf("\ntotal disbursed by mechanism: %.1f Algos; foundation pool balance kept: %.1f Algos\n",
		controller.TotalDisbursed(), pool.Balance())
	return nil
}
