// Command weight-oracle walks through the pluggable stake-weight seam:
// it runs the Fig. 3 defection sweep twice — once on the default
// ledger-direct oracle (sortition reads the chain's uniform-integer
// genesis stakes) and once on a synthetic Zipf profile with a mid-sweep
// churn step — and prints the per-round FINAL fractions side by side.
//
// The comparison is the point of the seam: the ledger, the gossip
// layer, the adversary hooks and the reward bookkeeping are identical
// in both runs; only the oracle answering "how much weight does node i
// carry in round r?" changes. A heavy-tailed profile concentrates
// committee seats on a few whales, so the collapse threshold shifts
// relative to the paper's uniform-stake baseline.
//
// Usage:
//
//	go run ./examples/weight-oracle [-nodes N] [-rounds R] [-runs K]
//	    [-weights SPEC] [-backend direct|indexed]
//
// SPEC follows cmd/scenario's -weights grammar, e.g.
// "zipf:1.3:40;churn@10:0.2:0.5" (Zipf exponent 1.3, mean stake 40,
// and at round 10 rescale a random 20% of nodes to half weight).
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/dsn2020-algorand/incentives/internal/experiments"
)

func main() {
	nodes := flag.Int("nodes", 100, "network size")
	rounds := flag.Int("rounds", 20, "rounds per simulation")
	runs := flag.Int("runs", 4, "independent runs per defection rate")
	weightsSpec := flag.String("weights", "zipf:1.1;churn@10:0.2:0.5",
		"synthetic weight profile for the second sweep (zipf:<exp>[:<meanStake>][;churn@<round>:<frac>:<scale>,...])")
	backend := flag.String("backend", "direct",
		"ledger-backed oracle for the baseline sweep: direct or indexed")
	flag.Parse()

	if err := run(*nodes, *rounds, *runs, *weightsSpec, *backend); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, rounds, runs int, weightsSpec, backendSpec string) error {
	cfg := experiments.DefaultFig3Config()
	cfg.Nodes = nodes
	cfg.Rounds = rounds
	cfg.Runs = runs
	cfg.DefectionRates = []float64{0.10, 0.20, 0.30}

	// Sweep 1: ledger-backed weights. "direct" is the pass-through
	// default; "indexed" routes the same reads through the incremental
	// Fenwick index — with no reward hook installed both are
	// bit-identical, so the backend flag here only demonstrates the
	// selection plumbing.
	var err error
	cfg.WeightBackend, err = experiments.ParseWeightBackend(backendSpec)
	if err != nil {
		return err
	}
	fmt.Printf("sweep 1: ledger stakes (U{1..50} genesis, %s backend)\n", cfg.WeightBackend)
	ledgerRes, err := experiments.RunFig3(cfg)
	if err != nil {
		return err
	}

	// Sweep 2: identical protocol, synthetic weights. The profile is a
	// pure function of each run's seed, so the sweep stays deterministic
	// at every worker count; rewards still accrue on chain but sortition
	// no longer reads balances.
	profile, err := experiments.ParseWeightProfile(weightsSpec)
	if err != nil {
		return err
	}
	if profile == nil {
		return fmt.Errorf("empty -weights spec: the second sweep needs a synthetic profile")
	}
	cfg.WeightProfile = profile
	fmt.Printf("sweep 2: synthetic profile %q\n\n", weightsSpec)
	zipfRes, err := experiments.RunFig3(cfg)
	if err != nil {
		return err
	}

	fmt.Println("fraction of nodes extracting a FINAL block, by round:")
	fmt.Print("          ledger stakes          synthetic profile\n")
	fmt.Print("round ")
	for range 2 {
		for _, s := range ledgerRes.Series {
			fmt.Printf("  d=%2.0f%%", s.Rate*100)
		}
		fmt.Print("   ")
	}
	fmt.Println()
	for round := 0; round < rounds; round++ {
		fmt.Printf("%5d ", round+1)
		for _, s := range ledgerRes.Series {
			fmt.Printf("  %5.1f", 100*s.Final[round])
		}
		fmt.Print("   ")
		for _, s := range zipfRes.Series {
			fmt.Printf("  %5.1f", 100*s.Final[round])
		}
		fmt.Println()
	}
	return nil
}
