// Command selfish-dynamics runs the repeated-round extension experiment:
// a population of honest-but-selfish nodes revising their strategies by
// myopic best response, under the Foundation's role-blind reward split
// versus the paper's role-based split at the Algorithm 1 reward. It
// prints the learned cooperation dispositions per role over time, showing
// that the role-based premiums keep leaders and committee members fully
// cooperative for as long as the chain lives — and that the unpaid
// "others" commons erodes under both schemes, which is exactly why the
// paper wants the Foundation to keep adapting rewards.
//
// Usage:
//
//	go run ./examples/selfish-dynamics [-nodes N] [-rounds R] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/dsn2020-algorand/incentives/internal/evolution"
)

func main() {
	nodes := flag.Int("nodes", 300, "population size")
	rounds := flag.Int("rounds", 100, "rounds to simulate")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*nodes, *rounds, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, rounds int, seed int64) error {
	for _, scheme := range []evolution.SchemeKind{
		evolution.SchemeFoundation,
		evolution.SchemeRoleBased,
	} {
		cfg := evolution.DefaultConfig(scheme)
		cfg.Nodes = nodes
		cfg.Rounds = rounds
		cfg.Seed = seed
		res, err := evolution.Run(cfg)
		if err != nil {
			return err
		}

		fmt.Printf("== %s ==\n", scheme)
		fmt.Println("round  leaders  committee  others  sync-set  block")
		step := rounds / 10
		if step == 0 {
			step = 1
		}
		for i, s := range res.Stats {
			if i%step != 0 && i != len(res.Stats)-1 {
				continue
			}
			mark := " "
			if s.BlockProduced {
				mark = "+"
			}
			fmt.Printf("%5d  %7.2f  %9.2f  %6.2f  %8.3f  %s\n",
				s.Round, s.StratLeaders, s.StratCommittee, s.StratOthers, s.CoopSyncSet, mark)
		}
		pl, pm := res.PrefixStratCoop()
		fmt.Printf("survived %d rounds producing blocks; dispositions while alive: leaders %.3f, committee %.3f\n\n",
			res.SurvivalRounds(), pl, pm)
	}
	fmt.Println("takeaway: the role-based premiums hold the paid roles at full cooperation;")
	fmt.Println("the unpaid relay commons erodes under both schemes until liveness tips over.")
	return nil
}
