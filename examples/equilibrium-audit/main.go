// Command equilibrium-audit certifies the paper's analytical results on
// randomly sampled round games: Theorem 1 (All-D is a Nash equilibrium of
// the Foundation game), Theorem 2 (All-C never is), Lemma 1 (going
// offline is dominated by defecting), Theorem 3 (the cooperative profile
// is a Nash equilibrium of the role-based game at the Algorithm 1
// reward), and tightness (half the reward breaks cooperation).
//
// Usage:
//
//	go run ./examples/equilibrium-audit [-samples N] [-others K]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/dsn2020-algorand/incentives/internal/experiments"
)

func main() {
	samples := flag.Int("samples", 100, "number of random games to audit")
	leaders := flag.Int("leaders", 3, "leaders per game")
	committee := flag.Int("committee", 10, "committee members per game")
	others := flag.Int("others", 50, "other online nodes per game")
	flag.Parse()

	cfg := experiments.DefaultEquilibriumConfig()
	cfg.Samples = *samples
	cfg.Leaders = *leaders
	cfg.Committee = *committee
	cfg.Others = *others

	res, err := experiments.RunEquilibrium(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audited %d random round games (%d leaders, %d committee, %d others each)\n\n",
		cfg.Samples, cfg.Leaders, cfg.Committee, cfg.Others)
	if err := res.WriteSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if !res.AllHold() {
		os.Exit(1)
	}
	fmt.Println("\nall analytical claims certified")
}
