// Command defection-impact reproduces the motivation experiment of the
// paper's Sec. III-C (Fig. 3) at example scale: it sweeps the fraction of
// honest-but-selfish nodes that defect and shows how the network's
// ability to finalise blocks degrades and finally collapses.
//
// Usage:
//
//	go run ./examples/defection-impact [-nodes N] [-rounds R] [-runs K]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/dsn2020-algorand/incentives/internal/experiments"
)

func main() {
	nodes := flag.Int("nodes", 100, "network size")
	rounds := flag.Int("rounds", 20, "rounds per simulation")
	runs := flag.Int("runs", 4, "independent runs per defection rate")
	flag.Parse()

	if err := run(*nodes, *rounds, *runs); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, rounds, runs int) error {
	cfg := experiments.DefaultFig3Config()
	cfg.Nodes = nodes
	cfg.Rounds = rounds
	cfg.Runs = runs

	fmt.Printf("simulating %d nodes, %d rounds, %d runs per rate...\n\n", nodes, rounds, runs)
	res, err := experiments.RunFig3(cfg)
	if err != nil {
		return err
	}

	fmt.Println("fraction of nodes extracting a FINAL block, by round:")
	fmt.Print("round ")
	for _, s := range res.Series {
		fmt.Printf("  d=%2.0f%%", s.Rate*100)
	}
	fmt.Println()
	for round := 0; round < rounds; round++ {
		fmt.Printf("%5d ", round+1)
		for _, s := range res.Series {
			fmt.Printf("  %5.1f", 100*s.Final[round])
		}
		fmt.Println()
	}
	fmt.Println()
	return res.WriteSummary(os.Stdout)
}
