// Command quickstart walks through the library end to end: it simulates a
// few Algorand BA* rounds on a small network, computes the
// incentive-compatible reward parameters (Algorithm 1) for the realised
// stake population, disburses the reward with the role-based scheme, and
// certifies that cooperation is a Nash equilibrium at that reward.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/rewards"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nodes = 80
	const rounds = 5

	// 1. A stake population: 80 nodes holding U(1,50) Algos, as in the
	//    paper's protocol simulations.
	rng := rand.New(rand.NewSource(42))
	pop, err := stake.SamplePopulation(stake.UniformInt{A: 1, B: 50}, nodes, rng)
	if err != nil {
		return err
	}

	// 2. Run the BA* protocol for a few rounds, paying each round with the
	//    role-based scheme at the Algorithm 1 reward.
	costs := game.DefaultRoleCosts()
	scheme := rewards.RoleBased{Alpha: 0.02, Beta: 0.03}
	behaviors := make([]protocol.Behavior, nodes)
	for i := range behaviors {
		behaviors[i] = protocol.Honest
	}

	var disbursed float64
	runner, err := protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    pop.Stakes,
		Behaviors: behaviors,
		Fanout:    5,
		Seed:      42,
		Reward: func(roles protocol.RoundRoles, report protocol.RoundReport) {
			if !report.Decided {
				return // no block, no reward
			}
			shares, err := scheme.Distribute(20, roles)
			if err != nil {
				return
			}
			disbursed += rewards.TotalOf(shares)
		},
	})
	if err != nil {
		return err
	}

	fmt.Println("== BA* protocol simulation ==")
	for _, rep := range runner.RunRounds(rounds) {
		fmt.Printf("round %d: final %5.1f%%  tentative %5.1f%%  none %5.1f%%  (decided=%v)\n",
			rep.Round, 100*rep.FinalFrac(), 100*rep.TentativeFrac(), 100*rep.NoneFrac(), rep.Decided)
	}
	fmt.Printf("disbursed %.2f Algos over %d rounds\n\n", disbursed, rounds)

	// 3. Algorithm 1 on the post-simulation stakes: the minimum reward and
	//    optimal (α, β, γ) that make cooperation a Nash equilibrium.
	live := &stake.Population{Stakes: weight.Snapshot(runner.Weights(), runner.Canonical().Round())}
	in, err := core.InputsFromPopulation(live, costs, core.Options{
		Committee: core.CommitteeConfig{TauProposer: 5, SStep: 100, Steps: 3, SFinal: 200},
	})
	if err != nil {
		return err
	}
	params, err := core.Minimize(in)
	if err != nil {
		return err
	}
	fmt.Println("== Algorithm 1: incentive-compatible reward ==")
	fmt.Printf("alpha=%.5f beta=%.5f gamma=%.5f\n", params.Alpha, params.Beta, params.Gamma)
	fmt.Printf("minimum per-round reward B = %.6f Algos (binding bound: %s)\n\n",
		params.MinB, params.Binding)

	// 4. Certify incentive compatibility: no unilateral deviation from the
	//    cooperative profile is profitable at this reward.
	if err := core.VerifyIncentiveCompatible(in, params); err != nil {
		return fmt.Errorf("verification: %w", err)
	}
	fmt.Println("verified: cooperation is a Nash equilibrium at B")

	// 5. ...and the Foundation's stake-proportional split is not
	//    incentive compatible at ANY reward (Theorem 2).
	g := core.BuildGame(in, params.B*1000)
	if ok, devs := g.IsNash(game.FoundationRule{}, g.AllC()); !ok {
		fmt.Printf("foundation split at 1000x the reward still admits: %s\n", devs[0])
	}
	_ = os.Stdout.Sync()
	return nil
}
