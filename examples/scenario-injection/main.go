// Example scenario-injection scripts a custom adversary timeline — a
// delay spike overlapping an adaptive-corruption wave, followed by a
// crash-churn tail — over a single simulation, and audits safety and
// liveness round by round.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
)

func main() {
	const n = 80
	stakes := make([]float64, n)
	behaviors := make([]protocol.Behavior, n)
	for i := range stakes {
		stakes[i] = float64(1 + i%50)
		behaviors[i] = protocol.Honest
	}
	runner, err := protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A scenario is a declarative timeline: phases with tick windows,
	// target selectors, and composable injections.
	scn := adversary.Scenario{
		Name:        "custom_squeeze",
		Description: "delay spike + adaptive corruption, then crash churn",
		Phases: []adversary.Phase{
			{
				Name: "slowdown", From: 2, To: 5,
				Target: adversary.Target{Mode: adversary.TargetRandom, Frac: 0.30},
				Inject: []adversary.Injection{
					{Kind: adversary.InjectDelaySpike, DelayScale: 4},
				},
			},
			{
				Name: "corrupt-committee", From: 3, To: 6,
				Target: adversary.Target{Mode: adversary.TargetAll},
				Inject: []adversary.Injection{
					{Kind: adversary.InjectAdaptiveCorrupt, Budget: 8},
				},
			},
			{
				Name: "churn-tail", From: 7,
				Target: adversary.Target{Mode: adversary.TargetBottomStake, Frac: 0.25},
				Inject: []adversary.Injection{
					{Kind: adversary.InjectCrashChurn, CrashProb: 0.4, RecoverProb: 0.5},
				},
			},
		},
	}
	eng, err := adversary.Attach(runner, scn)
	if err != nil {
		log.Fatal(err)
	}

	for i, rep := range runner.RunRounds(10) {
		fmt.Printf("tick %2d (round %2d): final %5.1f%%  tentative %5.1f%%  none %5.1f%%  decided=%v\n",
			i+1, rep.Round, 100*rep.FinalFrac(), 100*rep.TentativeFrac(), 100*rep.NoneFrac(), rep.Decided)
	}
	fmt.Println()
	if err := eng.Audit().Report().WriteSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
